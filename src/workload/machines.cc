#include "workload/machines.h"

#include <algorithm>

#include "common/format.h"

namespace cedr {
namespace workload {

SchemaPtr MachineEventSchema() {
  static const SchemaPtr kSchema = Schema::Make({
      {"Machine_Id", ValueType::kInt64},
      {"Build", ValueType::kString},
  });
  return kSchema;
}

MachineStreams GenerateMachineEvents(const MachineConfig& config) {
  Rng rng(config.seed);
  MachineStreams out;
  EventId next_id = 1;
  Time t = 1;

  struct Pending {
    Time at;
    Message msg;
    int stream;  // 0 install, 1 shutdown, 2 restart
  };
  std::vector<Pending> events;

  for (int i = 0; i < config.num_sessions; ++i, t += config.session_interval) {
    int64_t machine = rng.NextInt(0, config.num_machines - 1);
    Row payload(MachineEventSchema(),
                {Value(machine), Value(StrCat("build", i % 7))});

    Time install_at = t;
    Time shutdown_at =
        TimeAdd(install_at, rng.NextInt(1, config.max_session_length));
    Event install = MakeEvent(next_id++, install_at, kInfinity, payload);
    Event shutdown = MakeEvent(next_id++, shutdown_at, kInfinity, payload);
    events.push_back(Pending{install_at, InsertOf(install), 0});
    events.push_back(Pending{shutdown_at, InsertOf(shutdown), 1});

    if (rng.NextBool(config.restart_fraction)) {
      Time restart_at =
          TimeAdd(shutdown_at, rng.NextInt(1, config.restart_scope - 1));
      Event restart = MakeEvent(next_id++, restart_at, kInfinity, payload);
      events.push_back(Pending{restart_at, InsertOf(restart), 2});
    } else if (rng.NextBool(0.3)) {
      // A late restart outside the scope: must not suppress the alert.
      Time restart_at = TimeAdd(
          shutdown_at, config.restart_scope + rng.NextInt(1, 3600));
      Event restart = MakeEvent(next_id++, restart_at, kInfinity, payload);
      events.push_back(Pending{restart_at, InsertOf(restart), 2});
      ++out.expected_alerts;
    } else {
      ++out.expected_alerts;
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.at < b.at;
                   });
  for (const Pending& p : events) {
    switch (p.stream) {
      case 0:
        out.installs.push_back(p.msg);
        break;
      case 1:
        out.shutdowns.push_back(p.msg);
        break;
      default:
        out.restarts.push_back(p.msg);
        break;
    }
  }
  return out;
}

std::string Cidr07ExampleQuery(Duration shutdown_scope_hours,
                               Duration restart_scope_minutes) {
  return StrCat(
      "EVENT CIDR07_Example\n"
      "WHEN UNLESS(SEQUENCE(INSTALL AS x, SHUTDOWN AS y, ",
      shutdown_scope_hours,
      " hours),\n"
      "            RESTART AS z, ",
      restart_scope_minutes,
      " minutes)\n"
      "WHERE {x.Machine_Id = y.Machine_Id} AND\n"
      "      {x.Machine_Id = z.Machine_Id}");
}

std::map<std::string, SchemaPtr> MachineCatalog() {
  return {
      {"INSTALL", MachineEventSchema()},
      {"SHUTDOWN", MachineEventSchema()},
      {"RESTART", MachineEventSchema()},
  };
}

}  // namespace workload
}  // namespace cedr
