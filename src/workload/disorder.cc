#include "workload/disorder.h"

#include <algorithm>
#include <unordered_map>

namespace cedr {

std::vector<Message> ApplyDisorder(const std::vector<Message>& ordered,
                                   const DisorderConfig& config) {
  Rng rng(config.seed);

  struct Pending {
    Message msg;
    Time arrival;
    size_t seq;
  };
  std::vector<Pending> pending;
  pending.reserve(ordered.size());

  std::unordered_map<EventId, Time> insert_arrival;
  size_t seq = 0;
  for (const Message& m : ordered) {
    if (m.kind == MessageKind::kCti) continue;  // regenerated below
    Time delay = 0;
    if (config.max_delay > 0 && rng.NextBool(config.disorder_fraction)) {
      delay = rng.NextInt(1, config.max_delay);
    }
    Time arrival = TimeAdd(m.SyncTime(), delay);
    if (m.kind == MessageKind::kRetract) {
      // A correction cannot arrive before the event it corrects.
      auto it = insert_arrival.find(m.event.id);
      if (it != insert_arrival.end()) {
        arrival = std::max(arrival, TimeAdd(it->second, 1));
      }
    } else {
      Time& known = insert_arrival[m.event.id];
      known = std::max(known, arrival);
    }
    pending.push_back(Pending{m, arrival, seq++});
  }

  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.seq < b.seq;
            });

  // A CTI promises that every later message has sync time >= its
  // guarantee. The period-based bound (arrival - max_delay) alone is
  // not sound: a retraction is additionally held back until after the
  // insert it corrects, which can exceed max_delay. Clamp each
  // guarantee to the minimum sync time still to be delivered.
  std::vector<Time> suffix_min_sync(pending.size() + 1, kInfinity);
  for (size_t i = pending.size(); i-- > 0;) {
    suffix_min_sync[i] =
        std::min(suffix_min_sync[i + 1], pending[i].msg.SyncTime());
  }

  std::vector<Message> out;
  out.reserve(pending.size() + pending.size() / 4 + 1);
  Time next_cti = kMinTime;
  for (size_t i = 0; i < pending.size(); ++i) {
    const Pending& p = pending[i];
    if (config.cti_period > 0) {
      if (next_cti == kMinTime) {
        next_cti = TimeAdd(p.arrival, config.cti_period);
      }
      while (p.arrival >= next_cti) {
        // Everything delayed by at most max_delay: by arrival time T all
        // messages with sync < T - max_delay have arrived.
        Time guarantee =
            std::min(TimeSub(next_cti, config.max_delay), suffix_min_sync[i]);
        out.push_back(CtiOf(guarantee, next_cti));
        next_cti = TimeAdd(next_cti, config.cti_period);
      }
    }
    Message m = p.msg;
    m.cs = p.arrival;
    if (m.kind == MessageKind::kInsert) m.event.cs = p.arrival;
    out.push_back(std::move(m));
  }
  if (config.cti_period > 0 && !pending.empty()) {
    Time final_arrival = TimeAdd(pending.back().arrival, 1);
    out.push_back(CtiOf(TimeSub(final_arrival, 0), final_arrival));
  }
  return out;
}

}  // namespace cedr
