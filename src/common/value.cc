#include "common/value.h"

#include <cmath>
#include <sstream>

namespace cedr {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(std::string("cannot convert ") +
                                     ValueTypeToString(type()) +
                                     " to double");
  }
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::InvalidArgument("cannot compare null values");
  }
  const bool numeric_a =
      type() == ValueType::kInt64 || type() == ValueType::kDouble;
  const bool numeric_b =
      other.type() == ValueType::kInt64 || other.type() == ValueType::kDouble;
  if (numeric_a && numeric_b) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = std::move(*this).ToDouble().ValueOrDie();
    double b = std::move(other).ToDouble().ValueOrDie();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return Status::InvalidArgument(
        std::string("cannot compare ") + ValueTypeToString(type()) + " with " +
        ValueTypeToString(other.type()));
  }
  switch (type()) {
    case ValueType::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Status::Internal("unreachable value comparison");
  }
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(data_.index());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      HashCombineValue(&seed, AsBool());
      break;
    case ValueType::kInt64:
      HashCombineValue(&seed, AsInt64());
      break;
    case ValueType::kDouble:
      HashCombineValue(&seed, AsDouble());
      break;
    case ValueType::kString:
      HashCombineValue(&seed, AsString());
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

namespace {

template <typename IntOp, typename DoubleOp>
Result<Value> NumericBinary(const Value& a, const Value& b, IntOp iop,
                            DoubleOp dop) {
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Value(iop(a.AsInt64(), b.AsInt64()));
  }
  CEDR_ASSIGN_OR_RETURN(double da, a.ToDouble());
  CEDR_ASSIGN_OR_RETURN(double db, b.ToDouble());
  return Value(dop(da, db));
}

}  // namespace

Result<Value> ValueAdd(const Value& a, const Value& b) {
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    return Value(a.AsString() + b.AsString());
  }
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return x + y; },
      [](double x, double y) { return x + y; });
}

Result<Value> ValueSub(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return x - y; },
      [](double x, double y) { return x - y; });
}

Result<Value> ValueMul(const Value& a, const Value& b) {
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) { return x * y; },
      [](double x, double y) { return x * y; });
}

Result<Value> ValueDiv(const Value& a, const Value& b) {
  CEDR_ASSIGN_OR_RETURN(double db, b.ToDouble());
  if (db == 0) return Status::InvalidArgument("division by zero");
  CEDR_ASSIGN_OR_RETURN(double da, a.ToDouble());
  return Value(da / db);
}

}  // namespace cedr
