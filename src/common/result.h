// Result<T>: a value or an error Status, modeled on arrow::Result.
#ifndef CEDR_COMMON_RESULT_H_
#define CEDR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cedr {

template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok());
  }
  /// Constructs a success result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  /// Same as ValueOrDie; name used by CEDR_ASSIGN_OR_RETURN.
  T ValueUnsafe() && { return std::move(*value_); }

  /// Returns the value, or `alternative` on error.
  T ValueOr(T alternative) const& { return ok() ? *value_ : alternative; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cedr

#endif  // CEDR_COMMON_RESULT_H_
