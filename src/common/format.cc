#include "common/format.h"

#include <algorithm>
#include <iomanip>

namespace cedr {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string rule = "+";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

}  // namespace cedr
