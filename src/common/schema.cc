#include "common/schema.h"

namespace cedr {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no field named '" + name + "' in schema " +
                            ToString());
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.count(name) > 0;
}

std::shared_ptr<const Schema> Schema::Concat(const Schema& left,
                                             const Schema& right,
                                             const std::string& right_prefix) {
  std::vector<Field> fields = left.fields();
  for (const Field& f : right.fields()) {
    std::string name = f.name;
    if (left.HasField(name)) name = right_prefix + name;
    fields.push_back(Field{std::move(name), f.type});
  }
  return Make(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += ValueTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace cedr
