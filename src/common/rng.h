// Deterministic pseudo-random number generation for workload synthesis.
//
// We implement xoshiro256** seeded via SplitMix64 and Lemire's bounded
// reduction so that generated workloads are bit-identical across standard
// libraries and platforms (std::uniform_int_distribution is not portable).
#ifndef CEDR_COMMON_RNG_H_
#define CEDR_COMMON_RNG_H_

#include <cstdint>

#include "common/hash.h"

namespace cedr {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0xCED42007ULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = SplitMix64(x);
      s = x;
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Approximately normal via sum of uniforms (Irwin-Hall with 12 terms);
  /// adequate for workload jitter and fully deterministic.
  double NextGaussian(double mean, double stddev) {
    double sum = 0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return mean + stddev * (sum - 6.0);
  }

  /// Geometric-ish waiting time: number of failures before a success with
  /// probability p (p in (0, 1]); returns 0 when p >= 1.
  int64_t NextGeometric(double p) {
    if (p >= 1.0) return 0;
    int64_t n = 0;
    while (!NextBool(p) && n < (1 << 20)) ++n;
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace cedr

#endif  // CEDR_COMMON_RNG_H_
