// Row: an event payload — a tuple of Values conforming to a Schema.
#ifndef CEDR_COMMON_ROW_H_
#define CEDR_COMMON_ROW_H_

#include <atomic>
#include <initializer_list>
#include <vector>

#include "common/schema.h"

namespace cedr {

class Row {
 public:
  Row() = default;
  Row(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  // Values are immutable after construction, so the memoized hash can be
  // carried across copies and moves. The cache is a relaxed atomic: rows
  // shared read-only across worker threads may race to fill it, but both
  // writers store the same value.
  Row(const Row& other)
      : schema_(other.schema_),
        values_(other.values_),
        hash_cache_(other.hash_cache_.load(std::memory_order_relaxed)) {}
  Row(Row&& other) noexcept
      : schema_(std::move(other.schema_)),
        values_(std::move(other.values_)),
        hash_cache_(other.hash_cache_.load(std::memory_order_relaxed)) {}
  Row& operator=(const Row& other) {
    schema_ = other.schema_;
    values_ = other.values_;
    hash_cache_.store(other.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }
  Row& operator=(Row&& other) noexcept {
    schema_ = std::move(other.schema_);
    values_ = std::move(other.values_);
    hash_cache_.store(other.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Field lookup by name via the schema.
  Result<Value> Get(const std::string& name) const;

  /// Payload equality: values only (the paper's coalesce compares
  /// payloads for identity; schema identity is implied by the stream).
  bool operator==(const Row& other) const { return values_ == other.values_; }
  bool operator!=(const Row& other) const { return !(*this == other); }
  bool operator<(const Row& other) const { return values_ < other.values_; }

  /// Join output: this row's values followed by `right`'s, under `schema`.
  Row Concat(const Row& right, SchemaPtr schema) const;

  /// Memoized on first call (values never change after construction).
  size_t Hash() const;
  std::string ToString() const;

 private:
  size_t ComputeHash() const;

  SchemaPtr schema_;
  std::vector<Value> values_;
  /// 0 = not yet computed (computed hashes are nudged away from 0).
  mutable std::atomic<size_t> hash_cache_{0};
};

}  // namespace cedr

namespace std {
template <>
struct hash<cedr::Row> {
  size_t operator()(const cedr::Row& r) const { return r.Hash(); }
};
}  // namespace std

#endif  // CEDR_COMMON_ROW_H_
