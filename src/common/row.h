// Row: an event payload — a tuple of Values conforming to a Schema.
#ifndef CEDR_COMMON_ROW_H_
#define CEDR_COMMON_ROW_H_

#include <initializer_list>
#include <vector>

#include "common/schema.h"

namespace cedr {

class Row {
 public:
  Row() = default;
  Row(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Field lookup by name via the schema.
  Result<Value> Get(const std::string& name) const;

  /// Payload equality: values only (the paper's coalesce compares
  /// payloads for identity; schema identity is implied by the stream).
  bool operator==(const Row& other) const { return values_ == other.values_; }
  bool operator!=(const Row& other) const { return !(*this == other); }
  bool operator<(const Row& other) const { return values_ < other.values_; }

  /// Join output: this row's values followed by `right`'s, under `schema`.
  Row Concat(const Row& right, SchemaPtr schema) const;

  size_t Hash() const;
  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

}  // namespace cedr

namespace std {
template <>
struct hash<cedr::Row> {
  size_t operator()(const cedr::Row& r) const { return r.Hash(); }
};
}  // namespace std

#endif  // CEDR_COMMON_ROW_H_
