#include "common/row.h"

namespace cedr {

Result<Value> Row::Get(const std::string& name) const {
  if (schema_ == nullptr) {
    return Status::InvalidArgument("row has no schema");
  }
  CEDR_ASSIGN_OR_RETURN(size_t idx, schema_->FieldIndex(name));
  if (idx >= values_.size()) {
    return Status::Internal("row shorter than its schema");
  }
  return values_[idx];
}

Row Row::Concat(const Row& right, SchemaPtr schema) const {
  std::vector<Value> values;
  values.reserve(values_.size() + right.values_.size());
  values.insert(values.end(), values_.begin(), values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Row(std::move(schema), std::move(values));
}

size_t Row::ComputeHash() const {
  size_t seed = 0xC0DE;
  for (const Value& v : values_) HashCombine(&seed, v.Hash());
  if (seed == 0) seed = 1;  // 0 is the "not yet computed" sentinel
  return seed;
}

size_t Row::Hash() const {
  size_t cached = hash_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  size_t computed = ComputeHash();
  hash_cache_.store(computed, std::memory_order_relaxed);
  return computed;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace cedr
