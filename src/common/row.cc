#include "common/row.h"

namespace cedr {

Result<Value> Row::Get(const std::string& name) const {
  if (schema_ == nullptr) {
    return Status::InvalidArgument("row has no schema");
  }
  CEDR_ASSIGN_OR_RETURN(size_t idx, schema_->FieldIndex(name));
  if (idx >= values_.size()) {
    return Status::Internal("row shorter than its schema");
  }
  return values_[idx];
}

Row Row::Concat(const Row& right, SchemaPtr schema) const {
  std::vector<Value> values = values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Row(std::move(schema), std::move(values));
}

size_t Row::Hash() const {
  size_t seed = 0xC0DE;
  for (const Value& v : values_) HashCombine(&seed, v.Hash());
  return seed;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace cedr
