// Hashing utilities shared across the library.
#ifndef CEDR_COMMON_HASH_H_
#define CEDR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cedr {

/// Combines a hash value into a seed (boost::hash_combine recipe with a
/// 64-bit golden-ratio constant).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

template <typename T>
void HashCombineValue(size_t* seed, const T& value) {
  HashCombine(seed, std::hash<T>{}(value));
}

/// SplitMix64: the mixing function used to derive RNG streams and to hash
/// integer ids deterministically across platforms.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace cedr

#endif  // CEDR_COMMON_HASH_H_
