#include "common/time.h"

#include <algorithm>

namespace cedr {

Time TimeAdd(Time a, Duration b) {
  if (a == kInfinity || b == kInfinity) return kInfinity;
  if (b >= 0) {
    if (a > kInfinity - b) return kInfinity;
  } else {
    if (a < kMinTime - b) return kMinTime;
  }
  return a + b;
}

Time TimeSub(Time a, Duration b) {
  if (a == kInfinity) return kInfinity;
  if (b >= 0) {
    if (a < kMinTime + b) return kMinTime;
  } else {
    if (a > kInfinity + b) return kInfinity;
  }
  return a - b;
}

std::string TimeToString(Time t) {
  if (t == kInfinity) return "inf";
  if (t == kMinTime) return "-inf";
  return std::to_string(t);
}

Duration Interval::length() const {
  if (empty()) return 0;
  if (end == kInfinity) return kInfinity;
  return end - start;
}

bool Interval::Overlaps(const Interval& other) const {
  return !Intersect(other).empty();
}

Interval Interval::Intersect(const Interval& other) const {
  return Interval{std::max(start, other.start), std::min(end, other.end)};
}

std::string Interval::ToString() const {
  return "[" + TimeToString(start) + ", " + TimeToString(end) + ")";
}

}  // namespace cedr
