// Text formatting helpers: StrCat-style concatenation and an aligned
// table printer used by the benches to regenerate the paper's figures.
#ifndef CEDR_COMMON_FORMAT_H_
#define CEDR_COMMON_FORMAT_H_

#include <sstream>
#include <string>
#include <vector>

namespace cedr {

namespace internal {
inline void StrAppend(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppend(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  StrAppend(os, rest...);
}
}  // namespace internal

/// Concatenates streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppend(os, args...);
  return os.str();
}

/// Renders a double with fixed precision.
std::string FormatDouble(double v, int precision = 2);

/// Accumulates rows of string cells and renders them as an aligned
/// monospace table (the format the paper's figures use).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Renders with a header rule; column widths fit the widest cell.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cedr

#endif  // CEDR_COMMON_FORMAT_H_
