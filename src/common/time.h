// Temporal primitives for the CEDR tritemporal stream model.
//
// All three clocks of the paper (valid time, occurrence time, CEDR time)
// are represented as int64_t ticks. +infinity is kInfinity; intervals are
// half-open [start, end) as in the paper (Section 2).
#ifndef CEDR_COMMON_TIME_H_
#define CEDR_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace cedr {

using Time = int64_t;
using Duration = int64_t;

/// The paper's ∞: an event valid "forever" has Ve == kInfinity.
inline constexpr Time kInfinity = std::numeric_limits<Time>::max();
/// The least representable time (used as -infinity for bounds).
inline constexpr Time kMinTime = std::numeric_limits<Time>::min();

/// a + b with saturation at kInfinity (so t + w never overflows; adding
/// anything to infinity stays infinity).
Time TimeAdd(Time a, Duration b);

/// a - b with saturation; infinity minus a finite duration is infinity.
Time TimeSub(Time a, Duration b);

/// Renders a time, printing kInfinity as "inf".
std::string TimeToString(Time t);

/// Half-open interval [start, end). Empty iff start >= end.
struct Interval {
  Time start = 0;
  Time end = 0;

  bool empty() const { return start >= end; }
  Duration length() const;

  /// True iff t in [start, end).
  bool Contains(Time t) const { return start <= t && t < end; }
  /// True iff the intersection of the two intervals is non-empty.
  bool Overlaps(const Interval& other) const;
  /// Definition 10: two intervals [T1,T2), [T1',T2') meet iff T2 == T1'.
  bool Meets(const Interval& other) const { return end == other.start; }

  /// Intersection (possibly empty).
  Interval Intersect(const Interval& other) const;

  bool operator==(const Interval& other) const = default;

  std::string ToString() const;
};

}  // namespace cedr

#endif  // CEDR_COMMON_TIME_H_
