// Status: error propagation without exceptions, modeled on the
// Arrow/RocksDB Status idiom. A Status is either OK or carries an error
// code plus a human-readable message.
#ifndef CEDR_COMMON_STATUS_H_
#define CEDR_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cedr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kNotImplemented,
  kParseError,
  kBindError,
  kPlanError,
  kExecutionError,
  kInternal,
  /// Durable state (snapshot/journal) is missing or truncated: recovery
  /// cannot reconstruct the service without losing acknowledged input.
  kDataLoss,
  /// Durable state is present but fails validation (bad magic, version,
  /// or checksum): it must not be restored.
  kCorruption,
  /// A bounded resource (ingress queue, buffer budget) is full. The
  /// caller should back off and retry; the message carries a retry-after
  /// hint when one is known.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr means OK
};

}  // namespace cedr

/// Propagates a non-OK Status to the caller.
#define CEDR_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::cedr::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

#define CEDR_CONCAT_IMPL(a, b) a##b
#define CEDR_CONCAT(a, b) CEDR_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a
/// declaration, e.g. `auto v`).
#define CEDR_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto CEDR_CONCAT(_res_, __LINE__) = (expr);                     \
  if (!CEDR_CONCAT(_res_, __LINE__).ok())                         \
    return CEDR_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(CEDR_CONCAT(_res_, __LINE__)).ValueUnsafe();

#endif  // CEDR_COMMON_STATUS_H_
