#include "common/status.h"

namespace cedr {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kPlanError:
      return "Plan error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace cedr
