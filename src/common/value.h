// Dynamically typed values for event payloads.
//
// The paper treats payloads as opaque relational tuples ("rather like a
// stack frame"); operators other than selection/projection/join predicates
// never inspect them. Value is the cell type of those tuples.
#ifndef CEDR_COMMON_VALUE_H_
#define CEDR_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/result.h"

namespace cedr {

enum class ValueType { kNull = 0, kBool, kInt64, kDouble, kString };

const char* ValueTypeToString(ValueType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(bool v) : data_(v) {}                       // NOLINT implicit
  Value(int64_t v) : data_(v) {}                    // NOLINT implicit
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT implicit
  Value(double v) : data_(v) {}                     // NOLINT implicit
  Value(std::string v) : data_(std::move(v)) {}     // NOLINT implicit
  Value(const char* v) : data_(std::string(v)) {}   // NOLINT implicit

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric widening: int64 or double as double. Error for other types.
  Result<double> ToDouble() const;

  /// Structural equality (null == null; int64 and double never compare
  /// equal across types to keep hashing consistent).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order used for sorting canonical tables: by type index first,
  /// then value. Numeric cross-type comparison is handled by Compare below.
  bool operator<(const Value& other) const { return data_ < other.data_; }

  /// SQL-style three-way comparison for predicates: numerics compare by
  /// value across int64/double; comparing incompatible types or nulls is
  /// an error.
  Result<int> Compare(const Value& other) const;

  size_t Hash() const;
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// Arithmetic used by aggregates and OUTPUT expressions. Errors on
/// non-numeric operands. Int64 op Int64 stays integral; otherwise double.
Result<Value> ValueAdd(const Value& a, const Value& b);
Result<Value> ValueSub(const Value& a, const Value& b);
Result<Value> ValueMul(const Value& a, const Value& b);
Result<Value> ValueDiv(const Value& a, const Value& b);

}  // namespace cedr

namespace std {
template <>
struct hash<cedr::Value> {
  size_t operator()(const cedr::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // CEDR_COMMON_VALUE_H_
