// Relational schemas for event payloads.
#ifndef CEDR_COMMON_SCHEMA_H_
#define CEDR_COMMON_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace cedr {

struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const = default;
};

/// Immutable payload schema: an ordered list of named, typed fields.
/// Schemas are shared by shared_ptr between all rows of a stream.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// Schema of a join output: fields of `left` then fields of `right`,
  /// right-side names prefixed with `right_prefix` when they collide.
  static std::shared_ptr<const Schema> Concat(const Schema& left,
                                              const Schema& right,
                                              const std::string& right_prefix);

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace cedr

#endif  // CEDR_COMMON_SCHEMA_H_
