#include "baseline/point_engine.h"

#include <algorithm>

namespace cedr {
namespace baseline {

PointPatternDetector::PointPatternDetector(Duration sequence_scope,
                                           Duration negation_scope,
                                           std::string key_attribute)
    : sequence_scope_(sequence_scope),
      negation_scope_(negation_scope),
      key_attribute_(std::move(key_attribute)) {}

void PointPatternDetector::OnArrival(int kind, const Message& msg) {
  if (msg.kind != MessageKind::kInsert) return;  // cannot express these
  const Event& e = msg.event;
  auto key_value = e.payload.Get(key_attribute_);
  if (!key_value.ok() ||
      key_value.ValueOrDie().type() != ValueType::kInt64) {
    return;
  }
  int64_t key = key_value.ValueOrDie().AsInt64();

  // Point engines trust arrival order: the engine clock is the latest
  // arrival's application timestamp.
  clock_ = std::max(clock_, e.vs);
  Resolve(clock_);

  switch (kind) {
    case 0: {  // A / install
      auto& list = installs_[key];
      list.push_back(e.vs);
      // Expire installs beyond the sequence scope, assuming order.
      while (!list.empty() &&
             TimeAdd(list.front(), sequence_scope_) < clock_) {
        list.erase(list.begin());
      }
      break;
    }
    case 1: {  // B / shutdown
      auto it = installs_.find(key);
      if (it == installs_.end() || it->second.empty()) break;
      // Most recent install within scope (point-engine "recent" policy).
      Time best = kMinTime;
      for (Time install : it->second) {
        if (install < e.vs && e.vs - install <= sequence_scope_) {
          best = std::max(best, install);
        }
      }
      if (best == kMinTime) break;
      PendingAlert pa;
      pa.alert = Alert{key, best, e.vs};
      pa.due = TimeAdd(e.vs, negation_scope_);
      pending_.push_back(pa);
      break;
    }
    default: {  // C / restart: kills pending alerts of this key in scope
      for (PendingAlert& pa : pending_) {
        if (pa.killed) continue;
        if (pa.alert.key == key && pa.alert.shutdown_vs < e.vs &&
            e.vs < pa.due) {
          pa.killed = true;
        }
      }
      break;
    }
  }
  size_t state = pending_.size();
  for (const auto& [k, list] : installs_) state += list.size();
  max_state_ = std::max(max_state_, state);
}

void PointPatternDetector::Resolve(Time now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->killed) {
      it = pending_.erase(it);
      continue;
    }
    if (it->due <= now) {
      alerts_.push_back(it->alert);
      it = pending_.erase(it);
      continue;
    }
    ++it;
  }
}

void PointPatternDetector::Finish() { Resolve(kInfinity); }

void PointWindowCounter::OnArrival(const Message& msg) {
  if (msg.kind != MessageKind::kInsert) return;
  Time t = msg.event.vs;
  times_.push_back(t);
  // Trusting order: drop everything at or before t - window.
  while (!times_.empty() && times_.front() <= TimeSub(t, window_)) {
    times_.erase(times_.begin());
  }
  counts_.emplace_back(t, static_cast<int64_t>(times_.size()));
}

}  // namespace baseline
}  // namespace cedr
