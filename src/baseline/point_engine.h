// Baseline: a classical point-event stream engine in the style the
// paper contrasts CEDR against (Section 1/2) - tuples are points, input
// is processed strictly in arrival order, there are no retractions, no
// CTIs, and no alignment. On ordered input it matches CEDR; on
// out-of-order input it silently produces wrong results, which the
// benches quantify.
#ifndef CEDR_BASELINE_POINT_ENGINE_H_
#define CEDR_BASELINE_POINT_ENGINE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stream/message.h"

namespace cedr {
namespace baseline {

/// Point-based SEQUENCE(A, B, w) followed by negated C within wn -
/// the CIDR07_Example shape. Events are consumed in arrival order; the
/// detector assumes timestamps are nondecreasing (a point engine's
/// standard assumption) and keys partial matches by an int64 correlation
/// attribute.
class PointPatternDetector {
 public:
  PointPatternDetector(Duration sequence_scope, Duration negation_scope,
                       std::string key_attribute);

  /// Feed in arrival order. kind: 0 = A (install), 1 = B (shutdown),
  /// 2 = C (restart). Retractions and CTIs are ignored (the baseline
  /// cannot express them).
  void OnArrival(int kind, const Message& msg);

  /// Alerts fired (emitted eagerly when B arrives and optimized by the
  /// no-lookahead rule: the alert is confirmed once the engine's clock
  /// passes the negation scope without a C).
  struct Alert {
    int64_t key;
    Time install_vs;
    Time shutdown_vs;
  };
  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Forces all pending alerts to resolve (end of stream).
  void Finish();

  size_t max_state() const { return max_state_; }

 private:
  void Resolve(Time now);

  struct PendingAlert {
    Alert alert;
    Time due;  // shutdown_vs + negation scope
    bool killed = false;
  };

  Duration sequence_scope_;
  Duration negation_scope_;
  std::string key_attribute_;
  std::map<int64_t, std::vector<Time>> installs_;  // key -> install times
  std::vector<PendingAlert> pending_;
  std::vector<Alert> alerts_;
  Time clock_ = kMinTime;  // advances with arrivals (point engines trust
                           // arrival order)
  size_t max_state_ = 0;
};

/// Point-based sliding-window count: |events in (t - w, t]| sampled at
/// each arrival, trusting arrival order. Returns one (time, count) per
/// arrival.
class PointWindowCounter {
 public:
  explicit PointWindowCounter(Duration window) : window_(window) {}

  void OnArrival(const Message& msg);
  const std::vector<std::pair<Time, int64_t>>& counts() const {
    return counts_;
  }

 private:
  Duration window_;
  std::vector<Time> times_;
  std::vector<std::pair<Time, int64_t>> counts_;
};

}  // namespace baseline
}  // namespace cedr

#endif  // CEDR_BASELINE_POINT_ENGINE_H_
