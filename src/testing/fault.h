// Deterministic fault-injection harness for the durable service.
//
// A scenario is a catalog, a set of standing queries, and a feed of
// ingress calls. The harness runs it uninterrupted or with a simulated
// crash after N accepted calls (drop the service, keep the durable
// bytes, recover, continue), and the FaultInjector deterministically
// damages the durable bytes (bit flips, truncation) to exercise the
// kCorruption/kDataLoss rejection paths. Everything is seeded, so every
// failure reproduces.
#ifndef CEDR_TESTING_FAULT_H_
#define CEDR_TESTING_FAULT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/durable.h"
#include "engine/supervisor.h"

namespace cedr {
namespace testing {

/// Seeded byte-level damage for snapshots and journals.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Flips one random bit; no-op on empty bytes.
  void FlipBit(std::string* bytes);

  /// Drops a random non-empty suffix (at least one byte); no-op on
  /// empty bytes.
  void Truncate(std::string* bytes);

  /// Uniform in [0, n); 0 when n == 0.
  uint64_t PickIndex(uint64_t n);

 private:
  Rng rng_;
};

/// A registered query: text plus an optional consistency override.
struct ScenarioQuery {
  std::string text;
  std::optional<ConsistencySpec> spec;
};

/// A self-contained workload for the durable service. The feed reuses
/// io::JournalRecord as the call representation (kPublish, kRetract,
/// kSyncPoint).
struct ServiceScenario {
  std::map<std::string, SchemaPtr> catalog;
  std::vector<ScenarioQuery> queries;
  std::vector<io::JournalRecord> feed;
};

/// Builds feed calls from a message stream of one event type (the
/// workload generators' output format). CTIs become sync points.
std::vector<io::JournalRecord> FeedOf(const std::string& type,
                                      const std::vector<Message>& stream);

/// Merges feeds by arrival (cs) order, stable within ties.
std::vector<io::JournalRecord> MergeFeeds(
    std::vector<std::vector<io::JournalRecord>> feeds);

/// Applies one feed call to the service.
Status ApplyFeedCall(DurableService* service, const io::JournalRecord& call);

/// Per-query physical output streams, keyed by query name.
using RunOutputs = std::map<std::string, std::vector<Message>>;

/// Runs the scenario start to finish on one DurableService.
Result<RunOutputs> RunUninterrupted(const ServiceScenario& scenario,
                                    DurableOptions options = {});

/// Runs the scenario, crashes after `crash_after` accepted feed calls
/// (keeping only the durable bytes), recovers, and finishes the feed on
/// the recovered service.
Result<RunOutputs> RunWithCrash(const ServiceScenario& scenario,
                                size_t crash_after,
                                DurableOptions options = {});

/// True when the two streams are identical message-for-message (same
/// kinds, events, ids, lifetimes, payloads, arrival stamps). Stronger
/// than logical equivalence: recovery must be invisible.
bool PhysicallyIdentical(const std::vector<Message>& a,
                         const std::vector<Message>& b);
bool PhysicallyIdentical(const RunOutputs& a, const RunOutputs& b);

// ---------------------------------------------------------------------
// Supervised harness: drives a SupervisedService the way a fleet of real
// providers would - per-source sequence numbering, backpressure retries,
// and reconnect-with-replay - all paced over the supervisor's logical
// clock so liveness deadlines and the governor actually fire.

/// One provider-side action in a supervised run.
struct SupervisedCall {
  enum class Action {
    kOffer,      ///< publish `call` (kPublish / kRetract / kSyncPoint)
    kReconnect,  ///< drop the connection, Reconnect(), replay history
  };
  Action action = Action::kOffer;
  std::string source;
  /// Logical tick at which the provider issues the action. The feed must
  /// be sorted by tick (MergeSupervisedFeeds keeps it that way).
  int64_t at_tick = 0;
  io::JournalRecord call;  ///< unused for kReconnect
};

/// A query registered under the supervisor, with an optional budget.
struct SupervisedQuery {
  std::string text;
  std::optional<ConsistencySpec> spec;
  std::optional<QueryBudget> budget;
};

struct SupervisedScenario {
  std::map<std::string, SchemaPtr> catalog;
  std::vector<SupervisedQuery> queries;
  /// source -> event types it owns.
  std::map<std::string, std::vector<std::string>> sources;
  std::vector<SupervisedCall> feed;
  /// Ticks to keep running after the feed and the ingress queue drain
  /// (lets liveness deadlines fire and the governor settle/restore).
  int64_t trailing_ticks = 8;
};

/// Paces a flat feed (testing::FeedOf / MergeFeeds output) for one
/// source: `calls_per_tick` calls per tick starting at `start_tick`.
std::vector<SupervisedCall> PaceFeed(
    const std::string& source, const std::vector<io::JournalRecord>& feed,
    int64_t start_tick = 0, int calls_per_tick = 8);

/// Interleaves supervised feeds by tick, stable within ties.
std::vector<SupervisedCall> MergeSupervisedFeeds(
    std::vector<std::vector<SupervisedCall>> feeds);

/// Everything observable from one supervised run.
struct SupervisedRun {
  RunOutputs outputs;  ///< spliced physical output streams per query
  std::map<std::string, EventList> ideals;  ///< converged logical output
  std::map<std::string, QueryStats> stats;  ///< StatsFor (incl. sheds)
  std::map<std::string, GovernorStatus> governors;
  std::map<std::string, SessionStats> sessions;
  /// Post-mortems of queries still quarantined at the end of the run.
  std::map<std::string, QuarantineReport> quarantines;
  ShedStats shed;
  std::string journal_bytes;
  int64_t ticks = 0;
  size_t max_queue_depth = 0;
  /// Calls re-offered after a kResourceExhausted rejection.
  uint64_t backpressure_retries = 0;
};

/// Optional per-tick hook for RunSupervised: called with the service and
/// the upcoming tick number immediately before every Tick() (including
/// the trailing ticks). The chaos harness's injection point.
using TickHook = std::function<Status(SupervisedService*, int64_t)>;

/// Runs the scenario start to finish. Providers assign their own
/// sequence numbers; a call rejected with kResourceExhausted is retried
/// on a later tick with the same sequence number (later calls of that
/// source queue behind it, preserving per-source order); kReconnect
/// replays the provider's history from the returned resume point, which
/// the session layer must absorb idempotently.
Result<SupervisedRun> RunSupervised(const SupervisedScenario& scenario,
                                    SupervisorConfig config = {},
                                    const TickHook& on_tick = {});

// ---------------------------------------------------------------------
// Chaos harness: composable fault schedules injected into a supervised
// run through the supervisor's deterministic fault seams
// (SetQueryFaultHook, ChargeWatchdogCost, ReviveQuery). Everything is
// seeded and virtual-time driven, so every failure reproduces exactly.

/// One injected fault in a chaos schedule.
struct ChaosFault {
  enum class Kind {
    /// Fault hook returns kExecutionError on every routed message: the
    /// "poison event" a bad payload or operator bug would produce.
    kPoisonStatus,
    /// Fault hook throws std::runtime_error: an escaped exception on
    /// the routing path (including pool workers).
    kThrow,
    /// Charges virtual watchdog cost over the tick deadline every tick
    /// for `duration_ticks`: a query that stopped keeping up.
    kSlow,
  };
  Kind kind = Kind::kPoisonStatus;
  /// Index of the targeted query among the supervisor's QueryNames()
  /// (sorted order), modulo the query count.
  size_t query_index = 0;
  /// Tick at which the fault arms.
  int64_t at_tick = 1;
  /// kSlow only: ticks the overload persists.
  int64_t duration_ticks = 8;
  /// When > 0, ReviveQuery this many ticks after the quarantine is
  /// observed (the quarantine-then-recover schedule); 0 = never revive.
  int64_t revive_after_ticks = 0;
};

struct ChaosSchedule {
  uint64_t seed = 0;
  std::vector<ChaosFault> faults;
};

/// Seeded schedule generator: 1..min(2, num_queries) faults with
/// distinct targets, kinds and timing derived from `seed`. Faults arm
/// inside the first quarter of `horizon_ticks` so live traffic is still
/// flowing when they bite.
ChaosSchedule GenerateChaosSchedule(uint64_t seed, size_t num_queries,
                                    int64_t horizon_ticks);

/// What happened to one scheduled fault (index-aligned with
/// ChaosSchedule::faults).
struct ChaosIncident {
  std::string query;
  ChaosFault fault;
  /// Tick the quarantine was observed (report.at_tick); -1 = the fault
  /// never quarantined its target.
  int64_t quarantined_at = -1;
  int64_t time_to_quarantine = -1;
  /// Tick ReviveQuery ran; -1 = not revived.
  int64_t revived_at = -1;
  /// Post-mortem captured at quarantine time (survives revival).
  QuarantineReport report;
};

struct ChaosRun {
  SupervisedRun run;
  std::vector<ChaosIncident> incidents;
};

/// Runs the scenario with the schedule's faults injected. The watchdog
/// is force-enabled (with a wall-clock-proof deadline) when the
/// schedule contains a kSlow fault.
Result<ChaosRun> RunChaos(const SupervisedScenario& scenario,
                          const ChaosSchedule& schedule,
                          SupervisorConfig config = {});

}  // namespace testing
}  // namespace cedr

#endif  // CEDR_TESTING_FAULT_H_
