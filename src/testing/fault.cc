#include "testing/fault.h"

#include <algorithm>

#include "common/format.h"

namespace cedr {
namespace testing {

void FaultInjector::FlipBit(std::string* bytes) {
  if (bytes->empty()) return;
  uint64_t byte = rng_.NextBounded(bytes->size());
  int bit = static_cast<int>(rng_.NextBounded(8));
  (*bytes)[byte] = static_cast<char>((*bytes)[byte] ^ (1 << bit));
}

void FaultInjector::Truncate(std::string* bytes) {
  if (bytes->empty()) return;
  uint64_t keep = rng_.NextBounded(bytes->size());  // < size: drops >= 1
  bytes->resize(keep);
}

uint64_t FaultInjector::PickIndex(uint64_t n) {
  return n == 0 ? 0 : rng_.NextBounded(n);
}

std::vector<io::JournalRecord> FeedOf(const std::string& type,
                                      const std::vector<Message>& stream) {
  std::vector<io::JournalRecord> feed;
  feed.reserve(stream.size());
  for (const Message& m : stream) {
    io::JournalRecord rec;
    rec.name = type;
    switch (m.kind) {
      case MessageKind::kInsert:
        rec.op = io::JournalOp::kPublish;
        rec.event = m.event;
        break;
      case MessageKind::kRetract:
        rec.op = io::JournalOp::kRetract;
        rec.event = m.event;
        rec.new_ve = m.new_ve;
        break;
      case MessageKind::kCti:
        rec.op = io::JournalOp::kSyncPoint;
        rec.time = m.time;
        break;
    }
    // Keep the stream's arrival stamp for merge ordering; the service
    // restamps on publish.
    rec.event.cs = m.cs;
    feed.push_back(std::move(rec));
  }
  return feed;
}

std::vector<io::JournalRecord> MergeFeeds(
    std::vector<std::vector<io::JournalRecord>> feeds) {
  struct Tagged {
    io::JournalRecord rec;
    Time at;
    size_t source;
    size_t pos;
  };
  std::vector<Tagged> all;
  for (size_t s = 0; s < feeds.size(); ++s) {
    for (size_t i = 0; i < feeds[s].size(); ++i) {
      Time at = feeds[s][i].op == io::JournalOp::kSyncPoint
                    ? feeds[s][i].time
                    : feeds[s][i].event.cs;
      all.push_back(Tagged{std::move(feeds[s][i]), at, s, i});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a,
                                              const Tagged& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.source != b.source) return a.source < b.source;
    return a.pos < b.pos;
  });
  std::vector<io::JournalRecord> merged;
  merged.reserve(all.size());
  for (Tagged& t : all) merged.push_back(std::move(t.rec));
  return merged;
}

Status ApplyFeedCall(DurableService* service,
                     const io::JournalRecord& call) {
  switch (call.op) {
    case io::JournalOp::kRegisterType:
      return service->RegisterEventType(call.name, call.schema);
    case io::JournalOp::kRegisterQuery: {
      std::optional<ConsistencySpec> spec;
      if (call.has_spec) spec = call.spec;
      return service->RegisterQuery(call.text, spec).status();
    }
    case io::JournalOp::kUnregisterQuery:
      return service->UnregisterQuery(call.name);
    case io::JournalOp::kPublish:
      return service->Publish(call.name, call.event);
    case io::JournalOp::kRetract:
      return service->PublishRetraction(call.name, call.event, call.new_ve);
    case io::JournalOp::kSyncPoint:
      return service->PublishSyncPoint(call.name, call.time);
    case io::JournalOp::kFinish:
      return service->Finish();
  }
  return Status::InvalidArgument("feed call has an unknown op");
}

namespace {

Status Prepare(DurableService* service, const ServiceScenario& scenario) {
  for (const auto& [name, schema] : scenario.catalog) {
    CEDR_RETURN_NOT_OK(service->RegisterEventType(name, schema));
  }
  for (const ScenarioQuery& q : scenario.queries) {
    CEDR_RETURN_NOT_OK(service->RegisterQuery(q.text, q.spec).status());
  }
  return Status::OK();
}

Result<RunOutputs> Collect(const DurableService& service) {
  RunOutputs outputs;
  for (const std::string& name : service.service().QueryNames()) {
    CEDR_ASSIGN_OR_RETURN(const CompiledQuery* query,
                          service.service().GetQuery(name));
    outputs[name] = query->sink().messages();
  }
  return outputs;
}

}  // namespace

Result<RunOutputs> RunUninterrupted(const ServiceScenario& scenario,
                                    DurableOptions options) {
  DurableService service(options);
  CEDR_RETURN_NOT_OK(Prepare(&service, scenario));
  for (const io::JournalRecord& call : scenario.feed) {
    CEDR_RETURN_NOT_OK(ApplyFeedCall(&service, call));
  }
  CEDR_RETURN_NOT_OK(service.Finish());
  return Collect(service);
}

Result<RunOutputs> RunWithCrash(const ServiceScenario& scenario,
                                size_t crash_after,
                                DurableOptions options) {
  std::string snapshot_bytes;
  std::string journal_bytes;
  {
    DurableService service(options);
    CEDR_RETURN_NOT_OK(Prepare(&service, scenario));
    size_t applied = 0;
    for (const io::JournalRecord& call : scenario.feed) {
      if (applied == crash_after) break;
      CEDR_RETURN_NOT_OK(ApplyFeedCall(&service, call));
      ++applied;
    }
    // Crash: the process dies; only the durable bytes survive.
    snapshot_bytes = service.snapshot_bytes();
    journal_bytes = service.journal_bytes();
  }
  CEDR_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableService> recovered,
      DurableService::Recover(snapshot_bytes, journal_bytes, options));
  for (size_t i = std::min(crash_after, scenario.feed.size());
       i < scenario.feed.size(); ++i) {
    CEDR_RETURN_NOT_OK(ApplyFeedCall(recovered.get(), scenario.feed[i]));
  }
  CEDR_RETURN_NOT_OK(recovered->Finish());
  return Collect(*recovered);
}

bool PhysicallyIdentical(const std::vector<Message>& a,
                         const std::vector<Message>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Byte equality of the serialized forms covers every field,
    // including lineage and payload values.
    io::BinaryWriter wa;
    io::BinaryWriter wb;
    io::WriteMessage(&wa, a[i]);
    io::WriteMessage(&wb, b[i]);
    if (wa.bytes() != wb.bytes()) return false;
  }
  return true;
}

bool PhysicallyIdentical(const RunOutputs& a, const RunOutputs& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, stream] : a) {
    auto it = b.find(name);
    if (it == b.end()) return false;
    if (!PhysicallyIdentical(stream, it->second)) return false;
  }
  return true;
}

}  // namespace testing
}  // namespace cedr
