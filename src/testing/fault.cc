#include "testing/fault.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "common/format.h"

namespace cedr {
namespace testing {

void FaultInjector::FlipBit(std::string* bytes) {
  if (bytes->empty()) return;
  uint64_t byte = rng_.NextBounded(bytes->size());
  int bit = static_cast<int>(rng_.NextBounded(8));
  (*bytes)[byte] = static_cast<char>((*bytes)[byte] ^ (1 << bit));
}

void FaultInjector::Truncate(std::string* bytes) {
  if (bytes->empty()) return;
  uint64_t keep = rng_.NextBounded(bytes->size());  // < size: drops >= 1
  bytes->resize(keep);
}

uint64_t FaultInjector::PickIndex(uint64_t n) {
  return n == 0 ? 0 : rng_.NextBounded(n);
}

std::vector<io::JournalRecord> FeedOf(const std::string& type,
                                      const std::vector<Message>& stream) {
  std::vector<io::JournalRecord> feed;
  feed.reserve(stream.size());
  for (const Message& m : stream) {
    io::JournalRecord rec;
    rec.name = type;
    switch (m.kind) {
      case MessageKind::kInsert:
        rec.op = io::JournalOp::kPublish;
        rec.event = m.event;
        break;
      case MessageKind::kRetract:
        rec.op = io::JournalOp::kRetract;
        rec.event = m.event;
        rec.new_ve = m.new_ve;
        break;
      case MessageKind::kCti:
        rec.op = io::JournalOp::kSyncPoint;
        rec.time = m.time;
        break;
    }
    // Keep the stream's arrival stamp for merge ordering; the service
    // restamps on publish.
    rec.event.cs = m.cs;
    feed.push_back(std::move(rec));
  }
  return feed;
}

std::vector<io::JournalRecord> MergeFeeds(
    std::vector<std::vector<io::JournalRecord>> feeds) {
  struct Tagged {
    io::JournalRecord rec;
    Time at;
    size_t source;
    size_t pos;
  };
  std::vector<Tagged> all;
  for (size_t s = 0; s < feeds.size(); ++s) {
    for (size_t i = 0; i < feeds[s].size(); ++i) {
      Time at = feeds[s][i].op == io::JournalOp::kSyncPoint
                    ? feeds[s][i].time
                    : feeds[s][i].event.cs;
      all.push_back(Tagged{std::move(feeds[s][i]), at, s, i});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a,
                                              const Tagged& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.source != b.source) return a.source < b.source;
    return a.pos < b.pos;
  });
  std::vector<io::JournalRecord> merged;
  merged.reserve(all.size());
  for (Tagged& t : all) merged.push_back(std::move(t.rec));
  return merged;
}

Status ApplyFeedCall(DurableService* service,
                     const io::JournalRecord& call) {
  switch (call.op) {
    case io::JournalOp::kRegisterType:
      return service->RegisterEventType(call.name, call.schema);
    case io::JournalOp::kRegisterQuery: {
      std::optional<ConsistencySpec> spec;
      if (call.has_spec) spec = call.spec;
      return service->RegisterQuery(call.text, spec).status();
    }
    case io::JournalOp::kUnregisterQuery:
      return service->UnregisterQuery(call.name);
    case io::JournalOp::kPublish:
      return service->Publish(call.name, call.event);
    case io::JournalOp::kRetract:
      return service->PublishRetraction(call.name, call.event, call.new_ve);
    case io::JournalOp::kSyncPoint:
      return service->PublishSyncPoint(call.name, call.time);
    case io::JournalOp::kFinish:
      return service->Finish();
    case io::JournalOp::kEpoch:
      // No session layer on the plain durable service: nothing to do.
      return Status::OK();
  }
  return Status::InvalidArgument("feed call has an unknown op");
}

namespace {

Status Prepare(DurableService* service, const ServiceScenario& scenario) {
  for (const auto& [name, schema] : scenario.catalog) {
    CEDR_RETURN_NOT_OK(service->RegisterEventType(name, schema));
  }
  for (const ScenarioQuery& q : scenario.queries) {
    CEDR_RETURN_NOT_OK(service->RegisterQuery(q.text, q.spec).status());
  }
  return Status::OK();
}

Result<RunOutputs> Collect(const DurableService& service) {
  RunOutputs outputs;
  for (const std::string& name : service.service().QueryNames()) {
    CEDR_ASSIGN_OR_RETURN(const CompiledQuery* query,
                          service.service().GetQuery(name));
    outputs[name] = query->sink().messages();
  }
  return outputs;
}

}  // namespace

Result<RunOutputs> RunUninterrupted(const ServiceScenario& scenario,
                                    DurableOptions options) {
  DurableService service(options);
  CEDR_RETURN_NOT_OK(Prepare(&service, scenario));
  for (const io::JournalRecord& call : scenario.feed) {
    CEDR_RETURN_NOT_OK(ApplyFeedCall(&service, call));
  }
  CEDR_RETURN_NOT_OK(service.Finish());
  return Collect(service);
}

Result<RunOutputs> RunWithCrash(const ServiceScenario& scenario,
                                size_t crash_after,
                                DurableOptions options) {
  std::string snapshot_bytes;
  std::string journal_bytes;
  {
    DurableService service(options);
    CEDR_RETURN_NOT_OK(Prepare(&service, scenario));
    size_t applied = 0;
    for (const io::JournalRecord& call : scenario.feed) {
      if (applied == crash_after) break;
      CEDR_RETURN_NOT_OK(ApplyFeedCall(&service, call));
      ++applied;
    }
    // Crash: the process dies; only the durable bytes survive.
    snapshot_bytes = service.snapshot_bytes();
    journal_bytes = service.journal_bytes();
  }
  CEDR_ASSIGN_OR_RETURN(
      std::unique_ptr<DurableService> recovered,
      DurableService::Recover(snapshot_bytes, journal_bytes, options));
  for (size_t i = std::min(crash_after, scenario.feed.size());
       i < scenario.feed.size(); ++i) {
    CEDR_RETURN_NOT_OK(ApplyFeedCall(recovered.get(), scenario.feed[i]));
  }
  CEDR_RETURN_NOT_OK(recovered->Finish());
  return Collect(*recovered);
}

bool PhysicallyIdentical(const std::vector<Message>& a,
                         const std::vector<Message>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Byte equality of the serialized forms covers every field,
    // including lineage and payload values.
    io::BinaryWriter wa;
    io::BinaryWriter wb;
    io::WriteMessage(&wa, a[i]);
    io::WriteMessage(&wb, b[i]);
    if (wa.bytes() != wb.bytes()) return false;
  }
  return true;
}

bool PhysicallyIdentical(const RunOutputs& a, const RunOutputs& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, stream] : a) {
    auto it = b.find(name);
    if (it == b.end()) return false;
    if (!PhysicallyIdentical(stream, it->second)) return false;
  }
  return true;
}

std::vector<SupervisedCall> PaceFeed(
    const std::string& source, const std::vector<io::JournalRecord>& feed,
    int64_t start_tick, int calls_per_tick) {
  if (calls_per_tick < 1) calls_per_tick = 1;
  std::vector<SupervisedCall> paced;
  paced.reserve(feed.size());
  for (size_t i = 0; i < feed.size(); ++i) {
    SupervisedCall call;
    call.source = source;
    call.at_tick = start_tick + static_cast<int64_t>(i) / calls_per_tick;
    call.call = feed[i];
    paced.push_back(std::move(call));
  }
  return paced;
}

std::vector<SupervisedCall> MergeSupervisedFeeds(
    std::vector<std::vector<SupervisedCall>> feeds) {
  struct Tagged {
    SupervisedCall call;
    size_t feed;
    size_t pos;
  };
  std::vector<Tagged> all;
  for (size_t f = 0; f < feeds.size(); ++f) {
    for (size_t i = 0; i < feeds[f].size(); ++i) {
      all.push_back(Tagged{std::move(feeds[f][i]), f, i});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.call.at_tick != b.call.at_tick) {
                       return a.call.at_tick < b.call.at_tick;
                     }
                     if (a.feed != b.feed) return a.feed < b.feed;
                     return a.pos < b.pos;
                   });
  std::vector<SupervisedCall> merged;
  merged.reserve(all.size());
  for (Tagged& t : all) merged.push_back(std::move(t.call));
  return merged;
}

namespace {

/// Provider-side connection state: the sequence counter, the epoch the
/// provider believes it is in, the full send history (for replay), and
/// calls awaiting retry after a backpressure rejection.
struct Provider {
  uint64_t epoch = 0;
  uint64_t next_seq = 0;
  std::vector<io::JournalRecord> history;  // indexed by assigned seq
  std::deque<std::pair<uint64_t, io::JournalRecord>> pending;
};

Status OfferTo(SupervisedService* svc, const std::string& source,
               const Provider& p, uint64_t seq,
               const io::JournalRecord& call) {
  SupervisedService::Ingress ingress{source, p.epoch, seq};
  switch (call.op) {
    case io::JournalOp::kPublish:
      return svc->Publish(ingress, call.name, call.event);
    case io::JournalOp::kRetract:
      return svc->PublishRetraction(ingress, call.name, call.event,
                                    call.new_ve);
    case io::JournalOp::kSyncPoint:
      return svc->PublishSyncPoint(ingress, call.name, call.time);
    default:
      return Status::InvalidArgument(
          "supervised feed calls must be publish/retract/sync");
  }
}

}  // namespace

Result<SupervisedRun> RunSupervised(const SupervisedScenario& scenario,
                                    SupervisorConfig config,
                                    const TickHook& on_tick) {
  SupervisedService svc(config);
  for (const auto& [name, schema] : scenario.catalog) {
    CEDR_RETURN_NOT_OK(svc.RegisterEventType(name, schema));
  }
  for (const SupervisedQuery& q : scenario.queries) {
    CEDR_RETURN_NOT_OK(svc.RegisterQuery(q.text, q.spec, q.budget).status());
  }
  std::map<std::string, Provider> providers;
  for (const auto& [source, types] : scenario.sources) {
    CEDR_RETURN_NOT_OK(svc.AttachSource(source, types));
    providers.emplace(source, Provider());
  }

  SupervisedRun run;
  int64_t last_tick = scenario.feed.empty() ? 0 : scenario.feed.back().at_tick;
  // Generous bound: the feed, a full drain, and the trailing window.
  const int64_t tick_limit =
      last_tick + static_cast<int64_t>(scenario.feed.size()) +
      scenario.trailing_ticks + 10000;

  size_t next = 0;
  int64_t tick = 0;
  auto have_pending = [&providers] {
    for (const auto& [name, p] : providers) {
      if (!p.pending.empty()) return true;
    }
    return false;
  };
  while (next < scenario.feed.size() || have_pending() ||
         svc.queue_depth() > 0) {
    if (tick > tick_limit) {
      return Status::Internal(
          StrCat("supervised run made no progress by tick ", tick));
    }
    // Retries first: a pending call is older than anything offered this
    // tick, and later calls of its source are queued behind it.
    for (auto& [source, p] : providers) {
      while (!p.pending.empty()) {
        auto& [seq, call] = p.pending.front();
        Status offered = OfferTo(&svc, source, p, seq, call);
        if (offered.code() == StatusCode::kResourceExhausted) break;
        CEDR_RETURN_NOT_OK(offered);
        ++run.backpressure_retries;
        p.pending.pop_front();
      }
    }
    // This tick's feed actions.
    while (next < scenario.feed.size() &&
           scenario.feed[next].at_tick <= tick) {
      const SupervisedCall& action = scenario.feed[next];
      auto it = providers.find(action.source);
      if (it == providers.end()) {
        return Status::InvalidArgument(
            StrCat("feed references unattached source '", action.source,
                   "'"));
      }
      Provider& p = it->second;
      if (action.action == SupervisedCall::Action::kReconnect) {
        CEDR_ASSIGN_OR_RETURN(SourceSession::ResumePoint resume,
                              svc.Reconnect(action.source));
        p.epoch = resume.epoch;
        // Replay everything the supervisor has not acknowledged. The
        // session layer drops any overlap as duplicates.
        p.pending.clear();
        for (uint64_t seq = resume.next_seq; seq < p.history.size(); ++seq) {
          p.pending.emplace_back(seq, p.history[seq]);
        }
      } else {
        uint64_t seq = p.next_seq++;
        p.history.push_back(action.call);
        if (!p.pending.empty()) {
          // Keep per-source order: queue behind the stalled call.
          p.pending.emplace_back(seq, action.call);
        } else {
          Status offered = OfferTo(&svc, action.source, p, seq, action.call);
          if (offered.code() == StatusCode::kResourceExhausted) {
            p.pending.emplace_back(seq, action.call);
          } else {
            CEDR_RETURN_NOT_OK(offered);
          }
        }
      }
      ++next;
    }
    if (on_tick) CEDR_RETURN_NOT_OK(on_tick(&svc, tick));
    CEDR_RETURN_NOT_OK(svc.Tick());
    ++tick;
  }
  for (int64_t t = 0; t < scenario.trailing_ticks; ++t) {
    if (on_tick) CEDR_RETURN_NOT_OK(on_tick(&svc, tick));
    CEDR_RETURN_NOT_OK(svc.Tick());
    ++tick;
  }
  CEDR_RETURN_NOT_OK(svc.Finish());

  for (const std::string& name : svc.QueryNames()) {
    CEDR_ASSIGN_OR_RETURN(const SwitchableQuery* query, svc.GetQuery(name));
    run.outputs[name] = query->OutputMessages();
    run.ideals[name] = query->Ideal();
    CEDR_ASSIGN_OR_RETURN(run.stats[name], svc.StatsFor(name));
    CEDR_ASSIGN_OR_RETURN(run.governors[name], svc.GovernorOf(name));
  }
  for (const auto& [source, p] : providers) {
    CEDR_ASSIGN_OR_RETURN(const SourceSession* session, svc.Session(source));
    run.sessions[source] = session->stats();
  }
  for (const std::string& name : svc.QuarantinedQueries()) {
    CEDR_ASSIGN_OR_RETURN(run.quarantines[name], svc.QuarantineOf(name));
  }
  run.shed = svc.shed();
  run.journal_bytes = svc.journal().bytes();
  run.ticks = svc.now_ticks();
  run.max_queue_depth = svc.max_queue_depth();
  return run;
}

ChaosSchedule GenerateChaosSchedule(uint64_t seed, size_t num_queries,
                                    int64_t horizon_ticks) {
  ChaosSchedule schedule;
  schedule.seed = seed;
  Rng rng(seed ^ 0xC4A05u);
  if (num_queries == 0) return schedule;
  const size_t num_faults =
      1 + (num_queries > 1 ? rng.NextBounded(2) : 0);
  // Distinct targets: one fault per query at most, so incident
  // attribution stays unambiguous.
  std::vector<size_t> targets;
  for (size_t i = 0; i < num_queries; ++i) targets.push_back(i);
  for (size_t i = 0; i < num_faults; ++i) {
    size_t pick = i + rng.NextBounded(targets.size() - i);
    std::swap(targets[i], targets[pick]);
  }
  const int64_t arm_window = std::max<int64_t>(1, horizon_ticks / 4);
  for (size_t i = 0; i < num_faults; ++i) {
    ChaosFault fault;
    fault.kind = static_cast<ChaosFault::Kind>(rng.NextBounded(3));
    fault.query_index = targets[i];
    fault.at_tick = 1 + static_cast<int64_t>(
                            rng.NextBounded(static_cast<uint64_t>(arm_window)));
    fault.duration_ticks = 16;
    fault.revive_after_ticks =
        rng.NextBounded(2) == 0
            ? 0
            : 1 + static_cast<int64_t>(rng.NextBounded(3));
    schedule.faults.push_back(fault);
  }
  return schedule;
}

Result<ChaosRun> RunChaos(const SupervisedScenario& scenario,
                          const ChaosSchedule& schedule,
                          SupervisorConfig config) {
  bool any_slow = false;
  for (const ChaosFault& f : schedule.faults) {
    if (f.kind == ChaosFault::Kind::kSlow) any_slow = true;
  }
  if (any_slow && !config.watchdog.enabled) {
    config.watchdog.enabled = true;
    // Wall-clock-proof deadline: only virtual charges can trip it, so
    // the run is deterministic on arbitrarily slow machines.
    config.watchdog.tick_deadline_us = 1'000'000'000;
  }

  ChaosRun chaos;
  chaos.incidents.resize(schedule.faults.size());

  auto inject = [&](SupervisedService* svc, int64_t tick) -> Status {
    const std::vector<std::string> names = svc->QueryNames();
    if (names.empty()) return Status::OK();
    for (size_t i = 0; i < schedule.faults.size(); ++i) {
      const ChaosFault& fault = schedule.faults[i];
      ChaosIncident& incident = chaos.incidents[i];
      const std::string& target = names[fault.query_index % names.size()];
      incident.query = target;
      incident.fault = fault;
      // Arm.
      if (tick == fault.at_tick) {
        switch (fault.kind) {
          case ChaosFault::Kind::kPoisonStatus:
            CEDR_RETURN_NOT_OK(svc->SetQueryFaultHook(
                target, [](const std::string&, const Message&) {
                  return Status::ExecutionError("chaos: injected poison");
                }));
            break;
          case ChaosFault::Kind::kThrow:
            CEDR_RETURN_NOT_OK(svc->SetQueryFaultHook(
                target,
                [](const std::string&, const Message&) -> Status {
                  throw std::runtime_error("chaos: injected exception");
                }));
            break;
          case ChaosFault::Kind::kSlow:
            break;  // driven below, tick by tick
        }
      }
      // Sustain a slow fault: charge over-deadline virtual cost while
      // the overload window is open and the target is still live.
      if (fault.kind == ChaosFault::Kind::kSlow &&
          tick >= fault.at_tick &&
          tick < fault.at_tick + fault.duration_ticks &&
          incident.quarantined_at < 0) {
        CEDR_RETURN_NOT_OK(svc->ChargeWatchdogCost(
            target, config.watchdog.tick_deadline_us + 1));
      }
      // Observe the quarantine and capture the post-mortem before a
      // revival erases it.
      if (tick >= fault.at_tick && incident.quarantined_at < 0) {
        Result<QuarantineReport> report = svc->QuarantineOf(target);
        if (report.ok()) {
          incident.report = report.ValueOrDie();
          incident.quarantined_at = incident.report.at_tick;
          incident.time_to_quarantine =
              incident.report.at_tick - fault.at_tick;
        }
      }
      // Quarantine-then-recover.
      if (fault.revive_after_ticks > 0 && incident.quarantined_at >= 0 &&
          incident.revived_at < 0 &&
          tick >= incident.quarantined_at + fault.revive_after_ticks) {
        CEDR_RETURN_NOT_OK(svc->ReviveQuery(target));
        incident.revived_at = tick;
      }
    }
    return Status::OK();
  };

  CEDR_ASSIGN_OR_RETURN(chaos.run,
                        RunSupervised(scenario, config, inject));
  // A quarantine in the final tick is only visible in the end-of-run
  // reports; fold it into the incident.
  for (ChaosIncident& incident : chaos.incidents) {
    if (incident.quarantined_at >= 0) continue;
    auto it = chaos.run.quarantines.find(incident.query);
    if (it == chaos.run.quarantines.end()) continue;
    incident.report = it->second;
    incident.quarantined_at = it->second.at_tick;
    incident.time_to_quarantine =
        it->second.at_tick - incident.fault.at_tick;
  }
  return chaos;
}

}  // namespace testing
}  // namespace cedr
