#include "stream/bitemporal.h"

#include <algorithm>

#include "common/format.h"

namespace cedr {

void BitemporalProvider::Emit(Message msg) {
  msg.cs = next_cs_++;
  if (msg.kind == MessageKind::kInsert) msg.event.cs = msg.cs;
  stream_.push_back(std::move(msg));
}

BitemporalProvider::Version* BitemporalProvider::CurrentVersion(EventId id) {
  auto it = facts_.find(id);
  if (it == facts_.end()) return nullptr;
  Version* current = nullptr;
  for (Version& v : it->second) {
    if (v.removed) continue;
    if (v.event.oe == kInfinity) current = &v;
  }
  return current;
}

Status BitemporalProvider::Insert(EventId id, Interval valid, Time at,
                                  Row payload) {
  if (at < clock_) {
    return Status::InvalidArgument(
        StrCat("occurrence clock must be nondecreasing (", at, " < ",
               clock_, ")"));
  }
  if (CurrentVersion(id) != nullptr) {
    return Status::AlreadyExists(StrCat("fact ", id, " already exists"));
  }
  clock_ = at;
  Event e = MakeBitemporalEvent(id, valid.start, valid.end, at, kInfinity,
                                std::move(payload));
  e.k = next_k_++;
  facts_[id].push_back(Version{e, e.k, false});
  Emit(InsertOf(e));
  return Status::OK();
}

Status BitemporalProvider::Modify(EventId id, Interval new_valid, Time at) {
  if (at < clock_) {
    return Status::InvalidArgument("occurrence clock must be nondecreasing");
  }
  Version* current = CurrentVersion(id);
  if (current == nullptr) {
    return Status::NotFound(StrCat("no current version of fact ", id));
  }
  if (at <= current->event.os) {
    return Status::InvalidArgument(
        "modification must be later than the current version");
  }
  clock_ = at;
  // Close the current version's occurrence interval. Figure 1 shows the
  // closure as implied by the modification's arrival; the physical
  // stream encodes it explicitly as a retraction so that replaying the
  // stream (per-K reduction) reconstructs the same belief.
  Emit(RetractOf(current->event, at));
  current->event.oe = at;
  Event e = current->event;
  e.vs = new_valid.start;
  e.ve = new_valid.end;
  e.os = at;
  e.oe = kInfinity;
  e.k = next_k_++;
  facts_[id].push_back(Version{e, e.k, false});
  Emit(InsertOf(e));
  return Status::OK();
}

Status BitemporalProvider::CorrectChangeTime(EventId id, Time wrong_at,
                                             Time actual_at) {
  if (actual_at >= wrong_at) {
    return Status::InvalidArgument(
        "corrections move a change earlier (retractions only decrease Oe)");
  }
  auto it = facts_.find(id);
  if (it == facts_.end()) {
    return Status::NotFound(StrCat("unknown fact ", id));
  }
  Version* mistimed = nullptr;
  Version* predecessor = nullptr;
  for (Version& v : it->second) {
    if (v.removed) continue;
    if (v.event.os == wrong_at) mistimed = &v;
    if (v.event.oe == wrong_at) predecessor = &v;
  }
  if (mistimed == nullptr || predecessor == nullptr) {
    return Status::NotFound(
        StrCat("no change of fact ", id, " at occurrence time ", wrong_at));
  }
  if (predecessor->event.os > actual_at) {
    return Status::InvalidArgument(
        "the corrected change time predates the previous version");
  }

  // 1. The predecessor's occurrence end moves earlier (a retraction).
  Event pred_as_emitted = predecessor->event;
  pred_as_emitted.oe = wrong_at;
  Emit(RetractOf(pred_as_emitted, actual_at));
  predecessor->event.oe = actual_at;

  // 2. "Since retractions can only decrease Oe, the original event must
  // be completely removed so that a new event with a new Os time may be
  // inserted": Oe -> Os.
  Emit(RetractOf(mistimed->event, mistimed->event.os));
  mistimed->removed = true;

  // 3. Reinsert at the correct occurrence time under a fresh K.
  Event corrected = mistimed->event;
  corrected.os = actual_at;
  corrected.oe = kInfinity;
  corrected.k = next_k_++;
  facts_[id].push_back(Version{corrected, corrected.k, false});
  Emit(InsertOf(corrected));
  return Status::OK();
}

Status BitemporalProvider::DeclareSyncPoint(Time at) {
  if (at < clock_) {
    return Status::InvalidArgument("sync point behind the provider clock");
  }
  clock_ = at;
  Emit(CtiOf(at));
  return Status::OK();
}

HistoryTable BitemporalProvider::History() const {
  return HistoryTable::FromMessages(stream_, TimeDomain::kOccurrence);
}

HistoryTable BitemporalProvider::ConceptualTable() const {
  std::vector<Event> rows;
  for (const auto& [id, versions] : facts_) {
    for (const Version& v : versions) {
      if (v.removed) continue;
      Event e = v.event;
      e.cs = 0;
      e.ce = kInfinity;
      rows.push_back(std::move(e));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Event& a, const Event& b) {
    if (a.id != b.id) return a.id < b.id;
    return a.os < b.os;
  });
  return HistoryTable(std::move(rows));
}

Result<Interval> BitemporalProvider::ValidityAsOf(EventId id, Time to) const {
  auto it = facts_.find(id);
  if (it == facts_.end()) {
    return Status::NotFound(StrCat("unknown fact ", id));
  }
  for (const Version& v : it->second) {
    if (v.removed) continue;
    if (v.event.occurrence().Contains(to)) return v.event.valid();
  }
  return Status::NotFound(
      StrCat("fact ", id, " has no version at occurrence time ", to));
}

std::vector<EventId> BitemporalProvider::ValidAt(Time tv, Time to) const {
  std::vector<EventId> out;
  for (const auto& [id, versions] : facts_) {
    auto validity = ValidityAsOf(id, to);
    if (validity.ok() && validity.ValueOrDie().Contains(tv)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace cedr
