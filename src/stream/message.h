// StreamMessage: the unit of the physical runtime stream (Section 6 model).
//
// Section 6 merges occurrence and valid time into a single valid-time
// dimension whose lifetime may only be *shortened* by retractions; in
// addition operators "accept occurrence time guarantees on subsequent
// inputs" (Figure 7). The physical stream is therefore a sequence of:
//
//   kInsert  - a new event with lifetime [vs, ve);
//   kRetract - shortens the lifetime of a previously inserted event to
//              [vs, new_ve); new_ve == vs removes the event entirely (the
//              paper's "completely remove the old event" protocol);
//   kCti     - current-time-increment guarantee: every later message has
//              sync time >= time (provider-declared sync points).
//
// The sync time of a message (the Sync column of Figure 6 translated to
// the unitemporal model) is vs for inserts and new_ve for retractions.
#ifndef CEDR_STREAM_MESSAGE_H_
#define CEDR_STREAM_MESSAGE_H_

#include <string>
#include <vector>

#include "stream/event.h"

namespace cedr {

enum class MessageKind { kInsert = 0, kRetract, kCti };

const char* MessageKindToString(MessageKind kind);

struct Message {
  MessageKind kind = MessageKind::kInsert;

  /// kInsert: the inserted event. kRetract: a copy of the event being
  /// corrected (id, vs, original ve, payload) so stateless operators can
  /// recompute derived values without a lookup.
  Event event;

  /// kRetract only: the corrected (smaller) valid end time.
  Time new_ve = 0;

  /// kCti only: the guarantee time.
  Time time = 0;

  /// CEDR arrival timestamp of this message (assigned by the source or
  /// the upstream operator when emitted).
  Time cs = 0;

  /// The Sync value used for sync-point and alignment logic.
  Time SyncTime() const;

  std::string ToString() const;
};

Message InsertOf(Event event, Time cs = 0);
Message RetractOf(const Event& event, Time new_ve, Time cs = 0);
Message CtiOf(Time time, Time cs = 0);

/// True iff messages are ordered by nondecreasing sync time and every
/// message respects all preceding CTIs (no out-of-order events).
bool IsOrdered(const std::vector<Message>& stream);

/// Fraction of adjacent message pairs in sync order (1.0 == fully
/// ordered). The orderliness measure of Figure 8.
double Orderliness(const std::vector<Message>& stream);

}  // namespace cedr

#endif  // CEDR_STREAM_MESSAGE_H_
