#include "stream/event.h"

#include <algorithm>

#include "common/format.h"
#include "common/hash.h"

namespace cedr {

std::string Event::ToString() const {
  std::string out = StrCat("e", id, " V", valid().ToString(), " O",
                           occurrence().ToString(), " C", cedr().ToString());
  if (!payload.empty()) out += " " + payload.ToString();
  return out;
}

EventId IdGen(const std::vector<EventId>& inputs) {
  uint64_t h = 0x5EED5EEDULL;
  for (EventId id : inputs) {
    h = SplitMix64(h ^ SplitMix64(id + 0x1234));
  }
  // Keep the top bit set so generated ids never collide with small
  // hand-assigned primitive ids.
  return h | (1ULL << 63);
}

Event MakeEvent(EventId id, Time vs, Time ve, Row payload) {
  Event e;
  e.id = id;
  e.vs = vs;
  e.ve = ve;
  e.os = vs;
  e.oe = kInfinity;
  e.k = id;
  e.rt = vs;
  e.payload = std::move(payload);
  return e;
}

Event MakeBitemporalEvent(EventId id, Time vs, Time ve, Time os, Time oe,
                          Row payload) {
  Event e = MakeEvent(id, vs, ve, std::move(payload));
  e.os = os;
  e.oe = oe;
  e.rt = vs;
  return e;
}

Time MinRootTime(const std::vector<EventRef>& contributors, Time fallback) {
  Time rt = fallback;
  for (const EventRef& c : contributors) rt = std::min(rt, c->rt);
  return rt;
}

}  // namespace cedr
