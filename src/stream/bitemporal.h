// Bitemporal stream construction (Section 2) and correction (Section 4).
//
// A provider models a fact as an ID whose validity interval can change
// over occurrence time: each change produces a new version row with the
// same ID, the previous version's occurrence interval closing at the
// change point (Figure 1). When a change itself turns out to be wrong,
// Figure 2's protocol repairs it with occurrence-time retractions: since
// retractions can only decrease Oe, re-timing a version means fully
// removing it (Oe = Os) and inserting a replacement under a fresh K.
//
// BitemporalProvider is the authoring API for such streams; the result
// is both a history table (the Figure 2 view) and a physical message
// stream that replays through HistoryTable::FromMessages.
#ifndef CEDR_STREAM_BITEMPORAL_H_
#define CEDR_STREAM_BITEMPORAL_H_

#include <map>

#include "common/result.h"
#include "stream/history_table.h"

namespace cedr {

class BitemporalProvider {
 public:
  BitemporalProvider() = default;

  /// Inserts a new fact `id` with validity `valid`, at occurrence time
  /// `at` (the provider's logical clock; must be nondecreasing).
  Status Insert(EventId id, Interval valid, Time at, Row payload = Row());

  /// Changes the fact's validity interval at occurrence time `at`
  /// (Figure 1's modification events): the current version's occurrence
  /// interval closes at `at` and a new version opens.
  Status Modify(EventId id, Interval new_valid, Time at);

  /// Figure 2's correction: the version of `id` current at occurrence
  /// time `wrong_at` was mistimed; its change actually happened at
  /// `actual_at` (< wrong_at). Emits the retraction pair the paper
  /// describes - reduce the predecessor's Oe, fully remove the mistimed
  /// version, reinsert at the correct occurrence time.
  Status CorrectChangeTime(EventId id, Time wrong_at, Time actual_at);

  /// Declares a provider sync point: every later message has occurrence
  /// sync time >= `at`.
  Status DeclareSyncPoint(Time at);

  /// The physical stream authored so far (occurrence-domain messages:
  /// retraction new ends are occurrence ends).
  const std::vector<Message>& stream() const { return stream_; }

  /// The physical history table of the authored stream (Figure 2's
  /// view: every row ever current, with CEDR intervals).
  HistoryTable History() const;

  /// The conceptual bitemporal table (Figure 1's view: the current
  /// belief, one row per surviving version with closed occurrence
  /// intervals).
  HistoryTable ConceptualTable() const;

  /// Bitemporal snapshot: the validity interval of `id` as believed at
  /// occurrence time `to` (NotFound if the fact did not exist then).
  Result<Interval> ValidityAsOf(EventId id, Time to) const;

  /// The bitemporal snapshot query of Section 2: all ids valid at
  /// valid-time `tv`, as believed at occurrence time `to`.
  std::vector<EventId> ValidAt(Time tv, Time to) const;

 private:
  struct Version {
    Event event;        // carries vs/ve (validity) and os/oe (occurrence)
    uint64_t k;
    bool removed = false;
  };

  /// Appends a message and assigns arrival order (CEDR time).
  void Emit(Message msg);

  Version* CurrentVersion(EventId id);

  std::map<EventId, std::vector<Version>> facts_;
  std::vector<Message> stream_;
  Time next_cs_ = 1;
  Time clock_ = kMinTime;   // provider occurrence clock (nondecreasing)
  uint64_t next_k_ = 1;
};

}  // namespace cedr

#endif  // CEDR_STREAM_BITEMPORAL_H_
