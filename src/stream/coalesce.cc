#include "stream/coalesce.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/hash.h"

namespace cedr {

bool Meets(const Event& e1, const Event& e2) {
  return e1.valid().Meets(e2.valid());
}

bool CanCoalesce(const Event& e1, const Event& e2) {
  return e1.payload == e2.payload && (Meets(e1, e2) || Meets(e2, e1));
}

void IntervalSet::Add(Interval iv) {
  if (iv.empty()) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& cur : intervals_) {
    if (cur.end < iv.start || iv.end < cur.start) {
      // Disjoint and not meeting: keep as is.
      out.push_back(cur);
    } else {
      // Overlapping or meeting: merge into iv.
      iv.start = std::min(iv.start, cur.start);
      iv.end = std::max(iv.end, cur.end);
    }
  }
  out.push_back(iv);
  std::sort(out.begin(), out.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  intervals_ = std::move(out);
}

void IntervalSet::Subtract(Interval iv) {
  if (iv.empty()) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& cur : intervals_) {
    Interval overlap = cur.Intersect(iv);
    if (overlap.empty()) {
      out.push_back(cur);
      continue;
    }
    Interval left{cur.start, overlap.start};
    Interval right{overlap.end, cur.end};
    if (!left.empty()) out.push_back(left);
    if (!right.empty()) out.push_back(right);
  }
  intervals_ = std::move(out);
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ", ";
    out += intervals_[i].ToString();
  }
  return out + "}";
}

std::map<Row, IntervalSet> ToRelation(const std::vector<Event>& events) {
  std::map<Row, IntervalSet> relation;
  for (const Event& e : events) {
    if (e.valid().empty()) continue;
    relation[e.payload].Add(e.valid());
  }
  return relation;
}

std::vector<Event> FromRelation(const std::map<Row, IntervalSet>& relation) {
  std::vector<Event> out;
  // Ids must be unique *and* deterministic for a given relation. A pure
  // (payload, interval) hash is deterministic but two distinct pairs can
  // collide under the 64-bit mix; a per-relation counter in the low bits
  // disambiguates (relations are iterated in map order, so the counter
  // assignment is itself deterministic).
  constexpr uint64_t kCounterBits = 20;
  constexpr uint64_t kCounterMask = (1ULL << kCounterBits) - 1;
  uint64_t counter = 0;
  for (const auto& [payload, set] : relation) {
    for (const Interval& iv : set.intervals()) {
      Event e;
      e.vs = iv.start;
      e.ve = iv.end;
      e.os = iv.start;
      e.oe = kInfinity;
      e.rt = iv.start;
      e.payload = payload;
      // Deterministic id from payload hash and interval, counter-tagged.
      size_t seed = payload.Hash();
      HashCombineValue(&seed, iv.start);
      HashCombineValue(&seed, iv.end);
      e.id = (SplitMix64(seed) & ~kCounterMask) | (counter & kCounterMask) |
             (1ULL << 62);
      ++counter;
      e.k = e.id;
      out.push_back(std::move(e));
    }
  }
#ifndef NDEBUG
  {
    std::set<EventId> ids;
    for (const Event& e : out) {
      bool inserted = ids.insert(e.id).second;
      assert(inserted && "FromRelation produced a duplicate event id");
      (void)inserted;
    }
  }
#endif
  return out;
}

std::vector<Event> Star(const std::vector<Event>& events) {
  return FromRelation(ToRelation(events));
}

HistoryTable Star(const HistoryTable& table) {
  return HistoryTable(Star(table.rows()));
}

}  // namespace cedr
