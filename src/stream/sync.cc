#include "stream/sync.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/format.h"

namespace cedr {

AnnotatedTable AnnotatedTable::FromHistory(const HistoryTable& table,
                                           TimeDomain domain) {
  AnnotatedTable out;
  out.domain_ = domain;
  // Order rows by Cs (stable w.r.t. the physical order for equal Cs).
  std::vector<Event> rows = table.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Event& a, const Event& b) { return a.cs < b.cs; });
  std::unordered_map<uint64_t, bool> seen;
  for (const Event& e : rows) {
    AnnotatedRow ar;
    ar.row = e;
    bool& already = seen[e.k];
    ar.is_retraction = already;
    ar.sync = already ? DomainEnd(e, domain) : DomainStart(e, domain);
    already = true;
    out.rows_.push_back(std::move(ar));
  }
  return out;
}

bool AnnotatedTable::IsSyncPoint(Time t0, Time T) const {
  for (const AnnotatedRow& e : rows_) {
    bool past_cedr = e.row.cs <= T;
    bool past_sync = e.sync <= t0;
    if (past_cedr != past_sync) return false;
  }
  return true;
}

bool AnnotatedTable::IsFullyOrdered() const {
  // rows_ is sorted by Cs; check it is also sorted by <Sync, Cs>.
  for (size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].sync < rows_[i - 1].sync) return false;
  }
  return true;
}

std::vector<AnnotatedTable::SyncRange> AnnotatedTable::EnumerateSyncPoints()
    const {
  std::vector<SyncRange> out;
  if (rows_.empty()) return out;
  // For each prefix split after position i (prefix = rows with Cs <=
  // rows_[i].cs), a valid t0 satisfies max(sync of prefix) <= t0 <
  // min(sync of suffix). Precompute suffix minima.
  const size_t n = rows_.size();
  std::vector<Time> suffix_min(n + 1, kInfinity);
  for (size_t i = n; i-- > 0;) {
    suffix_min[i] = std::min(suffix_min[i + 1], rows_[i].sync);
  }
  Time prefix_max = kMinTime;
  for (size_t i = 0; i < n; ++i) {
    prefix_max = std::max(prefix_max, rows_[i].sync);
    // Splits are only well defined at Cs boundaries: skip if the next row
    // shares this Cs (it would land on the same side of any T).
    if (i + 1 < n && rows_[i + 1].row.cs == rows_[i].row.cs) continue;
    // Definition 2 needs sync <= t0 for the prefix and sync > t0 for the
    // suffix, so t0 ranges over [prefix_max, suffix_min_next).
    SyncRange r;
    r.T = rows_[i].row.cs;
    r.t0_min = prefix_max;
    r.t0_max = suffix_min[i + 1];
    if (r.t0_min < r.t0_max) out.push_back(r);
  }
  return out;
}

double AnnotatedTable::SyncPointDensity() const {
  if (rows_.empty()) return 1.0;
  size_t count = 0;
  for (const AnnotatedRow& e : rows_) {
    if (IsSyncPoint(e.sync, e.row.cs)) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(rows_.size());
}

std::string AnnotatedTable::ToString() const {
  TextTable t({"K", "Sync", "Os", "Oe", "Cs", "Ce", "Kind"});
  for (const AnnotatedRow& e : rows_) {
    t.AddRow({StrCat("E", e.row.k), TimeToString(e.sync),
              TimeToString(DomainStart(e.row, domain_)),
              TimeToString(DomainEnd(e.row, domain_)),
              TimeToString(e.row.cs), TimeToString(e.row.ce),
              e.is_retraction ? "retract" : "insert"});
  }
  return t.ToString();
}

}  // namespace cedr
