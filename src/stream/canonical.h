// Canonical history tables (Section 4) and shredded canonical form
// (Section 3.3.2).
//
// Canonicalization "to" a time t0 is a two-step normalization:
//   1. reduction  - for each K group, only the entry with the earliest
//                   domain end time is retained (retractions only ever
//                   reduce the end, so this is the final version);
//   2. truncation - any end beyond t0 is clamped to t0, and rows starting
//                   after t0 are removed.
// The canonical table *at* t0 further removes rows whose (truncated)
// domain interval does not reach t0, leaving exactly the state live at t0.
#ifndef CEDR_STREAM_CANONICAL_H_
#define CEDR_STREAM_CANONICAL_H_

#include "stream/history_table.h"

namespace cedr {

/// Reduction step: one row per K, the one with the least domain end.
/// Ties are broken toward the latest Cs (the most recent physical row).
HistoryTable Reduce(const HistoryTable& table,
                    TimeDomain domain = TimeDomain::kOccurrence);

/// Truncation step: clamps ends greater than t0 down to t0 and drops rows
/// whose domain start exceeds t0.
HistoryTable TruncateTo(const HistoryTable& table, Time t0,
                        TimeDomain domain = TimeDomain::kOccurrence);

/// Canonical history table to t0 = TruncateTo(Reduce(table), t0).
HistoryTable CanonicalTo(const HistoryTable& table, Time t0,
                         TimeDomain domain = TimeDomain::kOccurrence);

/// Canonical history table at t0: CanonicalTo(t0) minus rows whose
/// truncated domain interval does not intersect t0 (i.e. rows that ended
/// strictly before t0) - the live snapshot.
HistoryTable CanonicalAt(const HistoryTable& table, Time t0,
                         TimeDomain domain = TimeDomain::kOccurrence);

/// The ideal history table (Section 6): the infinite canonical history
/// table with the CEDR time fields projected out and fully-removed rows
/// (empty domain intervals) dropped. This is the converged logical
/// content of the stream.
HistoryTable IdealTable(const HistoryTable& table,
                        TimeDomain domain = TimeDomain::kValid);

/// Shredded canonical form (Section 3.3.2): each row of the reduced table
/// with domain interval [s, e) is replaced by e-s rows of unit-length
/// consecutive intervals covering [s, e). Rows with infinite ends are
/// shredded up to `horizon` (the paper assumes finite intervals here).
HistoryTable Shred(const HistoryTable& table, Time horizon,
                   TimeDomain domain = TimeDomain::kOccurrence);

}  // namespace cedr

#endif  // CEDR_STREAM_CANONICAL_H_
