// Event: a tuple of the CEDR tritemporal stream model (Sections 2 and 4).
//
// Conceptually a stream is a time-varying relation whose rows carry three
// temporal dimensions:
//   * valid time      [Vs, Ve)  - when the fact holds, per the provider;
//   * occurrence time [Os, Oe)  - when this version of the fact was the
//                                 current one, per the provider's logical
//                                 clock (modifications produce new rows
//                                 with the same ID and later Os);
//   * CEDR time       [Cs, Ce)  - when this physical row was current at
//                                 the CEDR server (retractions close Ce of
//                                 the row they correct).
// K groups an initial insert with all its retractions (Section 4,
// Figure 2). Rt and cbt[] are the composite-event header fields of
// Section 3.3.1: root time and contributor lineage.
#ifndef CEDR_STREAM_EVENT_H_
#define CEDR_STREAM_EVENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/row.h"
#include "common/time.h"

namespace cedr {

using EventId = uint64_t;

struct Event;
using EventRef = std::shared_ptr<const Event>;

struct Event {
  EventId id = 0;

  // Valid time.
  Time vs = 0;
  Time ve = kInfinity;
  // Occurrence time.
  Time os = 0;
  Time oe = kInfinity;
  // CEDR (system) time.
  Time cs = 0;
  Time ce = kInfinity;

  /// Retraction-group key (Figure 2's K column).
  uint64_t k = 0;

  /// Root time: minimum root time among contributors; equals vs for
  /// primitive events. Used by CANCEL-WHEN (Section 3.3.2).
  Time rt = 0;

  /// Contributor lineage for composite events ([e1, ..., en]); empty for
  /// primitive events (the paper's NULL).
  std::vector<EventRef> cbt;

  Row payload;

  Interval valid() const { return Interval{vs, ve}; }
  Interval occurrence() const { return Interval{os, oe}; }
  Interval cedr() const { return Interval{cs, ce}; }

  bool is_primitive() const { return cbt.empty(); }

  /// Header + payload rendering, e.g. "e3 V[1, 10) O[2, inf) C[4, inf)".
  std::string ToString() const;
};

/// The paper's idgen pairing function: maps any list of contributor IDs to
/// an output ID such that different input sets give different outputs
/// (realized as an order-sensitive 64-bit mix; collisions are negligible
/// for the id spaces used here).
EventId IdGen(const std::vector<EventId>& inputs);

/// Convenience builders used pervasively in tests and benches.
Event MakeEvent(EventId id, Time vs, Time ve, Row payload = Row());
Event MakeBitemporalEvent(EventId id, Time vs, Time ve, Time os, Time oe,
                          Row payload = Row());

/// Returns the minimum root time among contributors, or fallback if none.
Time MinRootTime(const std::vector<EventRef>& contributors, Time fallback);

}  // namespace cedr

#endif  // CEDR_STREAM_EVENT_H_
