// Logical equivalence of streams (Definition 1, Section 4).
//
// Two streams are logically equivalent to t0 (at t0) iff their canonical
// history tables to t0 (at t0) agree after projecting out the CEDR time
// columns: they describe the same logical state of the underlying
// database regardless of the order in which the updates arrived.
#ifndef CEDR_STREAM_EQUIVALENCE_H_
#define CEDR_STREAM_EQUIVALENCE_H_

#include "stream/canonical.h"

namespace cedr {

struct EquivalenceOptions {
  TimeDomain domain = TimeDomain::kOccurrence;
  /// Definition 1 projects out Cs and Ce. K is an arrival-order artifact
  /// (the grouping of inserts with their retractions), so by default it is
  /// projected out too; set to true to demand identical K assignment.
  bool compare_k = false;
  /// When false, the ID column is also ignored (useful for comparing
  /// operator outputs whose generated ids differ between runs).
  bool compare_id = true;
  bool compare_payload = true;
  /// A completely removed event (empty domain interval after reduction)
  /// carries no logical content: by default it compares equal to never
  /// having been inserted at all.
  bool drop_empty = true;
};

/// Multiset equality of the projections of two (already canonical)
/// tables.
bool ProjectedEquals(const HistoryTable& a, const HistoryTable& b,
                     const EquivalenceOptions& options = {});

/// Definition 1: equivalence of the canonical tables *to* t0.
bool LogicallyEquivalentTo(const HistoryTable& a, const HistoryTable& b,
                           Time t0, const EquivalenceOptions& options = {});

/// Definition 1 variant: equivalence of the canonical tables *at* t0.
bool LogicallyEquivalentAt(const HistoryTable& a, const HistoryTable& b,
                           Time t0, const EquivalenceOptions& options = {});

/// Equivalence "to infinity" (Definition 6's premise): the converged
/// logical content is the same.
bool LogicallyEquivalent(const HistoryTable& a, const HistoryTable& b,
                         const EquivalenceOptions& options = {});

/// Convenience overloads replaying physical streams first.
bool LogicallyEquivalent(const std::vector<Message>& a,
                         const std::vector<Message>& b,
                         const EquivalenceOptions& options = {});

}  // namespace cedr

#endif  // CEDR_STREAM_EQUIVALENCE_H_
