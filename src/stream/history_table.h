// History tables (Section 4).
//
// A history table records every physical row a stream has carried,
// including superseded versions: each K group holds an initial insert
// followed by its retractions, each of which reduces the occurrence end
// time (tritemporal model) or the valid end time (Section 6 unitemporal
// model) relative to the previous matching entry. CEDR time [Cs, Ce)
// records when each row was the current one at the server.
#ifndef CEDR_STREAM_HISTORY_TABLE_H_
#define CEDR_STREAM_HISTORY_TABLE_H_

#include <string>
#include <vector>

#include "stream/message.h"

namespace cedr {

/// Which temporal dimension the canonicalization machinery reads. The
/// definitions of Section 4 are stated on occurrence time; Section 6
/// restates them on valid time for the unitemporal runtime model.
enum class TimeDomain { kOccurrence, kValid };

/// Accessors for the start/end of the selected domain.
Time DomainStart(const Event& e, TimeDomain domain);
Time DomainEnd(const Event& e, TimeDomain domain);
void SetDomainEnd(Event* e, TimeDomain domain, Time end);

class HistoryTable {
 public:
  HistoryTable() = default;
  explicit HistoryTable(std::vector<Event> rows) : rows_(std::move(rows)) {}

  /// Replays a physical message stream into its history table in the
  /// given domain: inserts open a new K group; retractions close the
  /// CEDR interval of the group's latest row and append the corrected
  /// row (Figure 2's protocol). CTIs carry no state and are skipped.
  static HistoryTable FromMessages(const std::vector<Message>& stream,
                                   TimeDomain domain = TimeDomain::kValid);

  const std::vector<Event>& rows() const { return rows_; }
  std::vector<Event>& rows() { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void Add(Event row) { rows_.push_back(std::move(row)); }

  /// Renders in the style of the paper's figures. `columns` is a subset
  /// of {"ID","Vs","Ve","Os","Oe","Cs","Ce","K","Payload"}.
  std::string ToString(const std::vector<std::string>& columns) const;

  /// All nine columns.
  std::string ToString() const;

 private:
  std::vector<Event> rows_;
};

}  // namespace cedr

#endif  // CEDR_STREAM_HISTORY_TABLE_H_
