// Annotated history tables and synchronization points (Section 4,
// Definition 2).
//
// The Sync column induces a global notion of out-of-order arrival: a
// stream has no out-of-order events iff sorting by Cs equals sorting by
// <Sync, Cs>. A sync point (t0, T) cleanly separates past from future in
// both occurrence time and CEDR time simultaneously: every row has either
// Cs <= T and Sync <= t0, or Cs > T and Sync > t0.
#ifndef CEDR_STREAM_SYNC_H_
#define CEDR_STREAM_SYNC_H_

#include <optional>

#include "stream/history_table.h"

namespace cedr {

struct AnnotatedRow {
  Event row;
  /// Os for insertions, Oe for retractions (valid-domain analogues when
  /// domain == kValid).
  Time sync = 0;
  bool is_retraction = false;
};

class AnnotatedTable {
 public:
  /// Annotates a history table: within each K group (ordered by Cs) the
  /// first row is the insertion (Sync = domain start) and every later row
  /// is a retraction (Sync = its reduced domain end).
  static AnnotatedTable FromHistory(const HistoryTable& table,
                                    TimeDomain domain = TimeDomain::kOccurrence);

  const std::vector<AnnotatedRow>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Definition 2 test for the pair (t0, T).
  bool IsSyncPoint(Time t0, Time T) const;

  /// True iff sorting by Cs gives the same order as sorting by
  /// <Sync, Cs> - the "no out-of-order events" criterion.
  bool IsFullyOrdered() const;

  /// All maximal sync points implied by the table: for each CEDR-time
  /// prefix boundary T (a Cs value present in the table), the range of t0
  /// for which (t0, T) is a sync point, if non-empty. Returned as pairs
  /// (T, [t0_lo, t0_hi)) with t0 any value in the range.
  struct SyncRange {
    Time T;
    Time t0_min;  // inclusive
    Time t0_max;  // exclusive upper bound (kInfinity if unbounded)
  };
  std::vector<SyncRange> EnumerateSyncPoints() const;

  /// Fraction of rows e for which (e.sync, e.cs) is a sync point - the
  /// strong-consistency condition 2) of Definition 3, and our quantitative
  /// orderliness measure for Figure 8.
  double SyncPointDensity() const;

  std::string ToString() const;

 private:
  std::vector<AnnotatedRow> rows_;  // sorted by Cs
  TimeDomain domain_ = TimeDomain::kOccurrence;
};

}  // namespace cedr

#endif  // CEDR_STREAM_SYNC_H_
