#include "stream/message.h"

#include "common/format.h"

namespace cedr {

const char* MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kInsert:
      return "INSERT";
    case MessageKind::kRetract:
      return "RETRACT";
    case MessageKind::kCti:
      return "CTI";
  }
  return "?";
}

Time Message::SyncTime() const {
  switch (kind) {
    case MessageKind::kInsert:
      return event.vs;
    case MessageKind::kRetract:
      return new_ve;
    case MessageKind::kCti:
      return time;
  }
  return 0;
}

std::string Message::ToString() const {
  switch (kind) {
    case MessageKind::kInsert:
      return StrCat("INSERT ", event.ToString(), " @cs=", cs);
    case MessageKind::kRetract:
      return StrCat("RETRACT e", event.id, " ", event.valid().ToString(),
                    " -> [", TimeToString(event.vs), ", ",
                    TimeToString(new_ve), ") @cs=", cs);
    case MessageKind::kCti:
      return StrCat("CTI ", TimeToString(time), " @cs=", cs);
  }
  return "?";
}

Message InsertOf(Event event, Time cs) {
  Message m;
  m.kind = MessageKind::kInsert;
  m.event = std::move(event);
  m.cs = cs;
  m.event.cs = cs;
  return m;
}

Message RetractOf(const Event& event, Time new_ve, Time cs) {
  Message m;
  m.kind = MessageKind::kRetract;
  m.event = event;
  m.new_ve = new_ve;
  m.cs = cs;
  return m;
}

Message CtiOf(Time time, Time cs) {
  Message m;
  m.kind = MessageKind::kCti;
  m.time = time;
  m.cs = cs;
  return m;
}

bool IsOrdered(const std::vector<Message>& stream) {
  Time watermark = kMinTime;
  for (const Message& m : stream) {
    if (m.SyncTime() < watermark) return false;
    if (m.kind == MessageKind::kCti) {
      watermark = std::max(watermark, m.time);
    } else {
      watermark = std::max(watermark, m.SyncTime());
    }
  }
  return true;
}

double Orderliness(const std::vector<Message>& stream) {
  if (stream.size() < 2) return 1.0;
  size_t ordered_pairs = 0;
  for (size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].SyncTime() >= stream[i - 1].SyncTime()) ++ordered_pairs;
  }
  return static_cast<double>(ordered_pairs) /
         static_cast<double>(stream.size() - 1);
}

}  // namespace cedr
