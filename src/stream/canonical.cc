#include "stream/canonical.h"

#include <algorithm>
#include <unordered_map>

namespace cedr {

HistoryTable Reduce(const HistoryTable& table, TimeDomain domain) {
  // K -> index into output rows.
  std::unordered_map<uint64_t, size_t> best;
  std::vector<Event> out;
  for (const Event& e : table.rows()) {
    auto [it, inserted] = best.emplace(e.k, out.size());
    if (inserted) {
      out.push_back(e);
      continue;
    }
    Event& cur = out[it->second];
    Time cur_end = DomainEnd(cur, domain);
    Time new_end = DomainEnd(e, domain);
    if (new_end < cur_end || (new_end == cur_end && e.cs >= cur.cs)) {
      cur = e;
    }
  }
  return HistoryTable(std::move(out));
}

HistoryTable TruncateTo(const HistoryTable& table, Time t0,
                        TimeDomain domain) {
  std::vector<Event> out;
  for (const Event& e : table.rows()) {
    if (DomainStart(e, domain) > t0) continue;
    Event copy = e;
    if (DomainEnd(copy, domain) > t0) SetDomainEnd(&copy, domain, t0);
    out.push_back(std::move(copy));
  }
  return HistoryTable(std::move(out));
}

HistoryTable CanonicalTo(const HistoryTable& table, Time t0,
                         TimeDomain domain) {
  return TruncateTo(Reduce(table, domain), t0, domain);
}

HistoryTable CanonicalAt(const HistoryTable& table, Time t0,
                         TimeDomain domain) {
  HistoryTable to = CanonicalTo(table, t0, domain);
  std::vector<Event> out;
  for (const Event& e : to.rows()) {
    // After truncation every end is <= t0; a row is live at t0 iff its
    // interval reaches t0 (the paper's "intersects t0").
    if (DomainEnd(e, domain) >= t0 && DomainStart(e, domain) <= t0) {
      out.push_back(e);
    }
  }
  return HistoryTable(std::move(out));
}

HistoryTable IdealTable(const HistoryTable& table, TimeDomain domain) {
  HistoryTable reduced = Reduce(table, domain);
  std::vector<Event> out;
  for (const Event& e : reduced.rows()) {
    if (DomainStart(e, domain) >= DomainEnd(e, domain)) continue;  // removed
    Event copy = e;
    copy.cs = 0;
    copy.ce = kInfinity;
    out.push_back(std::move(copy));
  }
  std::sort(out.begin(), out.end(), [&](const Event& a, const Event& b) {
    if (DomainStart(a, domain) != DomainStart(b, domain)) {
      return DomainStart(a, domain) < DomainStart(b, domain);
    }
    if (DomainEnd(a, domain) != DomainEnd(b, domain)) {
      return DomainEnd(a, domain) < DomainEnd(b, domain);
    }
    return a.id < b.id;
  });
  return HistoryTable(std::move(out));
}

HistoryTable Shred(const HistoryTable& table, Time horizon,
                   TimeDomain domain) {
  HistoryTable reduced = Reduce(table, domain);
  std::vector<Event> out;
  for (const Event& e : reduced.rows()) {
    Time start = DomainStart(e, domain);
    Time end = std::min(DomainEnd(e, domain), horizon);
    for (Time t = start; t < end; ++t) {
      Event piece = e;
      if (domain == TimeDomain::kOccurrence) {
        piece.os = t;
        piece.oe = t + 1;
      } else {
        piece.vs = t;
        piece.ve = t + 1;
      }
      out.push_back(std::move(piece));
    }
  }
  return HistoryTable(std::move(out));
}

}  // namespace cedr
