#include "stream/history_table.h"

#include <unordered_map>

#include "common/format.h"

namespace cedr {

Time DomainStart(const Event& e, TimeDomain domain) {
  return domain == TimeDomain::kOccurrence ? e.os : e.vs;
}

Time DomainEnd(const Event& e, TimeDomain domain) {
  return domain == TimeDomain::kOccurrence ? e.oe : e.ve;
}

void SetDomainEnd(Event* e, TimeDomain domain, Time end) {
  if (domain == TimeDomain::kOccurrence) {
    e->oe = end;
  } else {
    e->ve = end;
  }
}

HistoryTable HistoryTable::FromMessages(const std::vector<Message>& stream,
                                        TimeDomain domain) {
  HistoryTable table;
  // Index of the latest (open) row per K group.
  std::unordered_map<uint64_t, size_t> latest;
  for (const Message& m : stream) {
    switch (m.kind) {
      case MessageKind::kInsert: {
        Event row = m.event;
        row.cs = m.cs;
        row.ce = kInfinity;
        if (row.k == 0) row.k = row.id;
        latest[row.k] = table.rows_.size();
        table.rows_.push_back(std::move(row));
        break;
      }
      case MessageKind::kRetract: {
        uint64_t k = m.event.k != 0 ? m.event.k : m.event.id;
        auto it = latest.find(k);
        if (it == latest.end()) {
          // Retraction of an unknown event: record it as its own row so
          // the anomaly is visible in the table.
          Event row = m.event;
          SetDomainEnd(&row, domain, m.new_ve);
          row.cs = m.cs;
          row.ce = kInfinity;
          row.k = k;
          latest[k] = table.rows_.size();
          table.rows_.push_back(std::move(row));
          break;
        }
        Event& prev = table.rows_[it->second];
        prev.ce = m.cs;  // the previous version stops being current
        Event row = prev;
        SetDomainEnd(&row, domain, m.new_ve);
        row.cs = m.cs;
        row.ce = kInfinity;
        latest[k] = table.rows_.size();
        table.rows_.push_back(std::move(row));
        break;
      }
      case MessageKind::kCti:
        break;
    }
  }
  return table;
}

std::string HistoryTable::ToString(
    const std::vector<std::string>& columns) const {
  TextTable out(columns);
  for (const Event& e : rows_) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const std::string& c : columns) {
      if (c == "ID") {
        cells.push_back(StrCat("e", e.id));
      } else if (c == "Vs") {
        cells.push_back(TimeToString(e.vs));
      } else if (c == "Ve") {
        cells.push_back(TimeToString(e.ve));
      } else if (c == "Os") {
        cells.push_back(TimeToString(e.os));
      } else if (c == "Oe") {
        cells.push_back(TimeToString(e.oe));
      } else if (c == "Cs") {
        cells.push_back(TimeToString(e.cs));
      } else if (c == "Ce") {
        cells.push_back(TimeToString(e.ce));
      } else if (c == "K") {
        cells.push_back(StrCat("E", e.k));
      } else if (c == "Payload") {
        cells.push_back(e.payload.ToString());
      } else {
        cells.push_back("?");
      }
    }
    out.AddRow(std::move(cells));
  }
  return out.ToString();
}

std::string HistoryTable::ToString() const {
  return ToString({"ID", "Vs", "Ve", "Os", "Oe", "Cs", "Ce", "K", "Payload"});
}

}  // namespace cedr
