// Coalescing and the * operator (Definition 10), plus the per-payload
// interval-set normalization used by the set-semantics relational
// operators (union, difference, aggregation).
//
// Two events coalesce iff their payloads are identical and their valid
// intervals meet ([a,b) then [b,c) -> [a,c)). *(S) applies coalescence
// exhaustively; view-update compliance (Definition 11) is insensitivity
// of an operator to how lifetimes are chopped, i.e. O commutes with *.
#ifndef CEDR_STREAM_COALESCE_H_
#define CEDR_STREAM_COALESCE_H_

#include <map>
#include <vector>

#include "stream/history_table.h"

namespace cedr {

/// Definition 10's meets predicate on valid intervals.
bool Meets(const Event& e1, const Event& e2);

/// True iff the two events can be coalesced (equal payloads, intervals
/// meet in either direction).
bool CanCoalesce(const Event& e1, const Event& e2);

/// The * operator: repeatedly coalesces a unitemporal table until no two
/// events can be coalesced. Events with empty lifetimes are dropped.
/// Output is sorted by (payload, Vs) with fresh ids derived from the
/// coalesced group. Overlapping equal-payload intervals are unioned
/// (set semantics of the underlying changing relation).
HistoryTable Star(const HistoryTable& table);

/// Star on a raw event list.
std::vector<Event> Star(const std::vector<Event>& events);

/// A payload's lifetime as a set of disjoint, non-meeting intervals -
/// the fully coalesced form. Keyed map form used by runtime repair.
class IntervalSet {
 public:
  void Add(Interval iv);
  void Subtract(Interval iv);

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

  bool operator==(const IntervalSet& other) const = default;

  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;  // disjoint, sorted, non-meeting
};

/// Groups a unitemporal event list into payload -> coalesced interval
/// set. The canonical "changing relation" denoted by the stream.
std::map<Row, IntervalSet> ToRelation(const std::vector<Event>& events);

/// Expands a relation back to one event per (payload, interval) with
/// deterministic ids.
std::vector<Event> FromRelation(const std::map<Row, IntervalSet>& relation);

}  // namespace cedr

#endif  // CEDR_STREAM_COALESCE_H_
