#include "stream/equivalence.h"

#include <algorithm>
#include <tuple>

namespace cedr {

namespace {

struct ProjectedRow {
  EventId id;
  Time vs, ve, os, oe;
  uint64_t k;
  Row payload;

  auto Key() const { return std::tie(id, vs, ve, os, oe, k); }

  bool operator<(const ProjectedRow& other) const {
    if (Key() != other.Key()) return Key() < other.Key();
    return payload < other.payload;
  }
  bool operator==(const ProjectedRow& other) const {
    return Key() == other.Key() && payload == other.payload;
  }
};

std::vector<ProjectedRow> Project(const HistoryTable& table,
                                  const EquivalenceOptions& options) {
  std::vector<ProjectedRow> rows;
  rows.reserve(table.size());
  for (const Event& e : table.rows()) {
    if (options.drop_empty &&
        DomainStart(e, options.domain) >= DomainEnd(e, options.domain)) {
      continue;
    }
    ProjectedRow r;
    r.id = options.compare_id ? e.id : 0;
    r.vs = e.vs;
    r.ve = e.ve;
    r.os = e.os;
    r.oe = e.oe;
    r.k = options.compare_k ? e.k : 0;
    if (options.compare_payload) r.payload = e.payload;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

bool ProjectedEquals(const HistoryTable& a, const HistoryTable& b,
                     const EquivalenceOptions& options) {
  return Project(a, options) == Project(b, options);
}

bool LogicallyEquivalentTo(const HistoryTable& a, const HistoryTable& b,
                           Time t0, const EquivalenceOptions& options) {
  return ProjectedEquals(CanonicalTo(a, t0, options.domain),
                         CanonicalTo(b, t0, options.domain), options);
}

bool LogicallyEquivalentAt(const HistoryTable& a, const HistoryTable& b,
                           Time t0, const EquivalenceOptions& options) {
  return ProjectedEquals(CanonicalAt(a, t0, options.domain),
                         CanonicalAt(b, t0, options.domain), options);
}

bool LogicallyEquivalent(const HistoryTable& a, const HistoryTable& b,
                         const EquivalenceOptions& options) {
  return ProjectedEquals(CanonicalTo(a, kInfinity, options.domain),
                         CanonicalTo(b, kInfinity, options.domain), options);
}

bool LogicallyEquivalent(const std::vector<Message>& a,
                         const std::vector<Message>& b,
                         const EquivalenceOptions& options) {
  return LogicallyEquivalent(HistoryTable::FromMessages(a, options.domain),
                             HistoryTable::FromMessages(b, options.domain),
                             options);
}

}  // namespace cedr
