// Corpus files: minimized audit reproducers serialized to a line-based
// text format so they diff well, survive code review, and replay as
// tier-1 regression tests (corpus_replay_test runs every file under
// tests/corpus/).
#ifndef CEDR_AUDIT_CORPUS_H_
#define CEDR_AUDIT_CORPUS_H_

#include <string>
#include <vector>

#include "audit/auditor.h"

namespace cedr {
namespace audit {

/// Renders a case in the corpus text format.
std::string FormatCase(const AuditCase& c);

/// Parses FormatCase output. Rejects unknown directives, unknown
/// schemas, and malformed message lines with kParseError.
Result<AuditCase> ParseCase(const std::string& text);

Status SaveCase(const AuditCase& c, const std::string& path);
Result<AuditCase> LoadCase(const std::string& path);

/// Lexicographically sorted *.case files under `dir` (empty when the
/// directory is missing).
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace audit
}  // namespace cedr

#endif  // CEDR_AUDIT_CORPUS_H_
