// Whole-query denotational evaluation: interprets a bound logical plan
// as a pure function over ideal history tables, composing the
// denotational pattern/relational operators (src/denotation) exactly the
// way BuildPhysicalPlan composes the incremental runtime operators
// (src/plan/physical.cc) - leaf-local filters, predicate injection with
// flat-index rebasing, output projection, and temporal slices.
//
// This is the oracle side of the differential audit (DESIGN.md,
// "Differential auditing"): for any compiled query Q and ordered input
// streams S_1..S_k, the runtime at any (M = inf) consistency point must
// converge to Star-equality with DenoteQuery(Q.bound(), Ideal(S_i)).
#ifndef CEDR_AUDIT_DENOTE_H_
#define CEDR_AUDIT_DENOTE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "denotation/ideal.h"
#include "plan/logical.h"

namespace cedr {
namespace audit {

/// Evaluates the bound query denotationally over per-event-type ideal
/// inputs (unitemporal ideal history tables, e.g. denotation::IdealOf of
/// the ordered physical stream). Missing event types are treated as
/// empty inputs. kPlanError for plan shapes the evaluator does not
/// cover.
Result<EventList> DenoteQuery(const plan::BoundQuery& query,
                              const std::map<std::string, EventList>& inputs);

}  // namespace audit
}  // namespace cedr

#endif  // CEDR_AUDIT_DENOTE_H_
