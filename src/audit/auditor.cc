#include "audit/auditor.h"

#include <algorithm>

#include "audit/denote.h"
#include "audit/generate.h"
#include "common/format.h"
#include "denotation/relational.h"
#include "engine/parallel.h"
#include "engine/query.h"
#include "engine/sink.h"
#include "engine/switching.h"
#include "io/serde.h"
#include "ops/alter_lifetime.h"
#include "ops/difference.h"
#include "ops/groupby.h"
#include "ops/join.h"
#include "ops/project.h"
#include "ops/select.h"
#include "ops/union_op.h"

namespace cedr {
namespace audit {

const char* ExecModeToString(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSerial:
      return "serial";
    case ExecMode::kParallel:
      return "parallel";
    case ExecMode::kSnapshotRestore:
      return "snapshot";
    case ExecMode::kSwitchLevels:
      return "switch";
  }
  return "?";
}

namespace {

SchemaPtr JoinSchema() {
  return Schema::Make({{"l_k", ValueType::kInt64},
                       {"l_v", ValueType::kInt64},
                       {"r_k", ValueType::kInt64},
                       {"r_v", ValueType::kInt64}});
}

SchemaPtr GroupBySchema(ValueType total_type) {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"n", ValueType::kInt64},
                       {"total", total_type}});
}

std::map<std::string, OpSpec> BuildRegistry() {
  std::map<std::string, OpSpec> r;

  r["select"] = OpSpec{
      1, "kv",
      [](const ConsistencySpec& spec) {
        return std::make_unique<SelectOp>(
            [](const Row& row) { return row.at(0).AsInt64() % 2 == 0; }, spec);
      },
      [](const std::vector<EventList>& in) {
        return denotation::Select(in[0], [](const Row& row) {
          return row.at(0).AsInt64() % 2 == 0;
        });
      }};

  r["project"] = OpSpec{
      1, "kv",
      [](const ConsistencySpec& spec) {
        SchemaPtr schema = Schema::Make(
            {{"v", ValueType::kInt64}, {"k", ValueType::kInt64}});
        return std::make_unique<ProjectOp>(
            [schema](const Row& row) {
              return Row(schema, {row.at(1), row.at(0)});
            },
            spec);
      },
      [](const std::vector<EventList>& in) {
        SchemaPtr schema = Schema::Make(
            {{"v", ValueType::kInt64}, {"k", ValueType::kInt64}});
        return denotation::Project(in[0], [schema](const Row& row) {
          return Row(schema, {row.at(1), row.at(0)});
        });
      }};

  r["join"] = OpSpec{
      2, "kv",
      [](const ConsistencySpec& spec) {
        auto op = std::make_unique<JoinOp>(
            [](const Row& l, const Row& r2) {
              return l.at(0).AsInt64() == r2.at(0).AsInt64();
            },
            JoinSchema(), spec);
        op->SetEquiKeys([](const Row& row) { return row.at(0); },
                        [](const Row& row) { return row.at(0); });
        return op;
      },
      [](const std::vector<EventList>& in) {
        return denotation::Join(
            in[0], in[1],
            [](const Row& l, const Row& r2) {
              return l.at(0).AsInt64() == r2.at(0).AsInt64();
            },
            JoinSchema());
      }};

  r["union"] = OpSpec{
      2, "kv",
      [](const ConsistencySpec& spec) {
        return std::make_unique<UnionOp>(spec);
      },
      [](const std::vector<EventList>& in) {
        return denotation::Union(in[0], in[1]);
      }};

  r["difference"] = OpSpec{
      2, "kv",
      [](const ConsistencySpec& spec) {
        return std::make_unique<DifferenceOp>(spec);
      },
      [](const std::vector<EventList>& in) {
        return denotation::Difference(in[0], in[1]);
      }};

  auto groupby_aggs = [] {
    return std::vector<AggregateSpec>{
        {AggregateKind::kCount, "", "n"}, {AggregateKind::kSum, "v", "total"}};
  };
  r["groupby"] = OpSpec{
      1, "kv",
      [groupby_aggs](const ConsistencySpec& spec) {
        return std::make_unique<GroupByAggregateOp>(
            std::vector<std::string>{"k"}, groupby_aggs(),
            GroupBySchema(ValueType::kInt64), spec);
      },
      [groupby_aggs](const std::vector<EventList>& in) {
        return denotation::GroupByAggregate(in[0], {"k"}, groupby_aggs(),
                                            GroupBySchema(ValueType::kInt64));
      }};

  // Same aggregation over (int64, double) payloads: exercises sum's
  // type-preserving accumulator seeding on non-integer columns.
  r["groupby_kvd"] = OpSpec{
      1, "kvd",
      [groupby_aggs](const ConsistencySpec& spec) {
        return std::make_unique<GroupByAggregateOp>(
            std::vector<std::string>{"k"}, groupby_aggs(),
            GroupBySchema(ValueType::kDouble), spec);
      },
      [groupby_aggs](const std::vector<EventList>& in) {
        return denotation::GroupByAggregate(in[0], {"k"}, groupby_aggs(),
                                            GroupBySchema(ValueType::kDouble));
      }};

  r["window"] = OpSpec{
      1, "kv",
      [](const ConsistencySpec& spec) {
        return MakeSlidingWindowOp(25, spec);
      },
      [](const std::vector<EventList>& in) {
        return denotation::SlidingWindow(in[0], 25);
      }};

  r["hopping"] = OpSpec{
      1, "kv",
      [](const ConsistencySpec& spec) {
        return MakeHoppingWindowOp(20, 10, spec);
      },
      [](const std::vector<EventList>& in) {
        return denotation::HoppingWindow(in[0], 20, 10);
      }};

  return r;
}

/// Port of an "in<i>" single-op stream label.
int PortOfLabel(const std::string& label) {
  if (label.rfind("in", 0) != 0) return -1;
  return std::atoi(label.c_str() + 2);
}

/// Strong consistency forbids retractions the runtime *introduces*
/// (speculation under disorder), but source-native retractions are
/// data and flow through in order (see StrongInvariantTest
/// UnionWellBehavedUnderHeavyDisorder). The no-retraction assertion is
/// therefore only sound when the inputs carry none.
bool InputsRetractionFree(const AuditCase& c) {
  for (const LabeledStream& s : c.inputs) {
    for (const Message& m : s.messages) {
      if (m.kind == MessageKind::kRetract) return false;
    }
  }
  return true;
}

Time LastArrival(const std::vector<LabeledStream>& streams) {
  Time last = 0;
  for (const LabeledStream& s : streams) {
    for (const Message& m : s.messages) last = std::max(last, m.cs);
  }
  return last;
}

struct SingleOpRun {
  std::unique_ptr<Operator> op;
  std::unique_ptr<CollectingSink> sink;

  static SingleOpRun Make(const OpSpec& spec, const ConsistencySpec& level) {
    SingleOpRun r;
    r.op = spec.make(level);
    r.sink = std::make_unique<CollectingSink>();
    r.op->ConnectTo(r.sink.get(), 0);
    return r;
  }

  Status Push(int port, const Message& msg) { return op->Push(port, msg); }

  Status Finish(Time last_cs) {
    for (int port = 0; port < op->num_inputs(); ++port) {
      CEDR_RETURN_NOT_OK(
          op->Push(port, CtiOf(kInfinity, TimeAdd(last_cs, 1))));
    }
    return op->Drain();
  }
};

/// Merged arrival sequence annotated with the target port (single-op
/// mode) resolved from the stream labels.
struct PortMessage {
  int port;
  Message msg;
};

Result<std::vector<PortMessage>> MergePorts(
    const std::vector<LabeledStream>& streams) {
  std::vector<PortMessage> out;
  for (const auto& [label, msg] : MergeByArrival(streams)) {
    int port = PortOfLabel(label);
    if (port < 0) {
      return Status::InvalidArgument(
          StrCat("single-op stream label is not a port: ", label));
    }
    out.push_back({port, msg});
  }
  return out;
}

AuditResult RunSingleOp(const AuditCase& c, const OpSpec& spec,
                        const EventList& oracle) {
  AuditResult result;
  std::vector<LabeledStream> arrival = DifferentialAuditor::ArrivalStreams(c);
  auto merged_r = MergePorts(arrival);
  if (!merged_r.ok()) {
    result.status = merged_r.status();
    result.detail = result.status.ToString();
    return result;
  }
  std::vector<PortMessage> merged = std::move(merged_r).ValueUnsafe();
  Time last_cs = LastArrival(arrival);

  SingleOpRun run = SingleOpRun::Make(spec, c.spec);
  Status st;
  if (c.schedule.mode == ExecMode::kSnapshotRestore) {
    size_t cut = static_cast<size_t>(
        static_cast<double>(merged.size()) *
        std::clamp(c.schedule.snapshot_at, 0.0, 1.0));
    size_t i = 0;
    for (; i < cut && st.ok(); ++i) st = run.Push(merged[i].port,
                                                  merged[i].msg);
    if (st.ok()) {
      io::BinaryWriter w;
      run.op->Snapshot(&w);
      run.sink->Snapshot(&w);
      SingleOpRun fresh = SingleOpRun::Make(spec, c.spec);
      io::BinaryReader r(w.bytes());
      st = fresh.op->Restore(&r);
      if (st.ok()) st = fresh.sink->Restore(&r);
      if (st.ok()) run = std::move(fresh);
    }
    for (; i < merged.size() && st.ok(); ++i) {
      st = run.Push(merged[i].port, merged[i].msg);
    }
  } else {
    // kParallel / kSwitchLevels have no single-op realization (they are
    // engine-level schedules); the serial path is the fallback.
    for (const PortMessage& pm : merged) {
      st = run.Push(pm.port, pm.msg);
      if (!st.ok()) break;
    }
  }
  if (st.ok()) st = run.Finish(last_cs);
  if (!st.ok()) {
    result.status = st;
    result.detail = StrCat("runtime error: ", st.ToString());
    return result;
  }

  result.lost_corrections = run.op->stats().lost_corrections;
  result.output_retracts = run.sink->retracts();
  EventList actual = run.sink->Ideal();

  if (c.spec.IsWeak() && result.lost_corrections > 0) {
    result.pass = true;
    result.skipped_equality = true;
    return result;
  }
  if (c.spec.IsStrong() && result.output_retracts > 0 &&
      InputsRetractionFree(c)) {
    result.detail = StrCat("strong run emitted ", result.output_retracts,
                           " retractions on retraction-free input");
    return result;
  }
  if (!denotation::StarEqual(actual, oracle)) {
    result.detail =
        StrCat("converged output diverges from the denotation\nexpected:\n",
               denotation::ToTableString(oracle), "actual:\n",
               denotation::ToTableString(actual));
    return result;
  }
  result.pass = true;
  return result;
}

AuditResult RunWholeQuery(const AuditCase& c, const EventList& oracle) {
  AuditResult result;
  std::vector<LabeledStream> arrival = DifferentialAuditor::ArrivalStreams(c);
  std::vector<TypedMessage> merged = MergeByArrival(arrival);

  EventList actual;
  Status st;

  if (c.schedule.mode == ExecMode::kSwitchLevels) {
    auto sq_r = SwitchableQuery::Create(c.query_text, c.catalog, c.spec);
    if (!sq_r.ok()) {
      result.status = sq_r.status();
      result.detail = result.status.ToString();
      return result;
    }
    auto sq = std::move(sq_r).ValueUnsafe();
    auto switches = c.schedule.switches;
    std::sort(switches.begin(), switches.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t next_switch = 0;
    for (size_t i = 0; i < merged.size() && st.ok(); ++i) {
      while (next_switch < switches.size() &&
             static_cast<double>(i) >=
                 switches[next_switch].first *
                     static_cast<double>(merged.size())) {
        auto t = sq->SwitchTo(switches[next_switch].second);
        if (!t.ok()) {
          st = t.status();
          break;
        }
        ++next_switch;
      }
      if (st.ok()) st = sq->Push(merged[i].first, merged[i].second);
    }
    if (st.ok()) st = sq->Finish();
    if (st.ok()) {
      actual = sq->Ideal();
      result.lost_corrections = sq->Stats().lost_corrections;
      result.output_retracts = sq->active().sink().retracts();
    }
  } else {
    auto make_query = [&] {
      return CompiledQuery::Compile(c.query_text, c.catalog, c.spec);
    };
    auto q_r = make_query();
    if (!q_r.ok()) {
      result.status = q_r.status();
      result.detail = result.status.ToString();
      return result;
    }
    auto query = std::move(q_r).ValueUnsafe();

    if (c.schedule.mode == ExecMode::kParallel) {
      ParallelExecutor exec({std::max(1, c.schedule.workers), 64});
      exec.Register(query.get());
      st = exec.Run(arrival);
    } else if (c.schedule.mode == ExecMode::kSnapshotRestore) {
      size_t cut = static_cast<size_t>(
          static_cast<double>(merged.size()) *
          std::clamp(c.schedule.snapshot_at, 0.0, 1.0));
      st = query->PushBatch(
          std::span<const TypedMessage>(merged.data(), cut));
      if (st.ok()) {
        io::BinaryWriter w;
        st = query->Snapshot(&w);
        if (st.ok()) {
          auto fresh_r = make_query();
          if (!fresh_r.ok()) {
            st = fresh_r.status();
          } else {
            auto fresh = std::move(fresh_r).ValueUnsafe();
            io::BinaryReader r(w.bytes());
            st = fresh->Restore(&r);
            if (st.ok()) query = std::move(fresh);
          }
        }
      }
      if (st.ok()) {
        st = query->PushBatch(std::span<const TypedMessage>(
            merged.data() + cut, merged.size() - cut));
      }
      if (st.ok()) st = query->Finish();
    } else {
      st = query->PushBatch(merged);
      if (st.ok()) st = query->Finish();
    }
    if (st.ok()) {
      actual = query->sink().Ideal();
      result.lost_corrections = query->Stats().lost_corrections;
      result.output_retracts = query->sink().retracts();
    }
  }

  if (!st.ok()) {
    result.status = st;
    result.detail = StrCat("runtime error: ", st.ToString());
    return result;
  }

  if (c.spec.IsWeak() && result.lost_corrections > 0) {
    result.pass = true;
    result.skipped_equality = true;
    return result;
  }
  if (c.spec.IsStrong() && c.schedule.mode != ExecMode::kSwitchLevels &&
      result.output_retracts > 0 && InputsRetractionFree(c)) {
    result.detail = StrCat("strong run emitted ", result.output_retracts,
                           " retractions on retraction-free input");
    return result;
  }
  if (!denotation::StarEqual(actual, oracle)) {
    result.detail =
        StrCat("converged output diverges from the denotation\nexpected:\n",
               denotation::ToTableString(oracle), "actual:\n",
               denotation::ToTableString(actual));
    return result;
  }
  result.pass = true;
  return result;
}

}  // namespace

const std::map<std::string, OpSpec>& OpRegistry() {
  static const std::map<std::string, OpSpec> registry = BuildRegistry();
  return registry;
}

std::vector<LabeledStream> DifferentialAuditor::ArrivalStreams(
    const AuditCase& c) {
  std::vector<LabeledStream> out;
  out.reserve(c.inputs.size());
  uint64_t salt = 0;
  for (const LabeledStream& in : c.inputs) {
    DisorderConfig config = c.schedule.disorder;
    config.seed += salt++;  // decorrelate the per-stream shuffles
    out.push_back({in.event_type, ApplyDisorder(in.messages, config)});
  }
  return out;
}

Result<EventList> DifferentialAuditor::Oracle(const AuditCase& c) {
  std::map<std::string, EventList> ideals;
  for (const LabeledStream& in : c.inputs) {
    ideals[in.event_type] = denotation::IdealOf(in.messages);
  }
  if (c.single_op()) {
    auto it = OpRegistry().find(c.op_name);
    if (it == OpRegistry().end()) {
      return Status::NotFound(StrCat("unknown audit op: ", c.op_name));
    }
    std::vector<EventList> ports(static_cast<size_t>(it->second.num_inputs));
    for (const LabeledStream& in : c.inputs) {
      int port = PortOfLabel(in.event_type);
      if (port < 0 || port >= it->second.num_inputs) {
        return Status::InvalidArgument(
            StrCat("bad port label for ", c.op_name, ": ", in.event_type));
      }
      ports[static_cast<size_t>(port)] = ideals[in.event_type];
    }
    return it->second.denote(ports);
  }
  // Whole-query: the bound plan is schedule-invariant, so compile once
  // at middle consistency (the spec does not change the denotation).
  CEDR_ASSIGN_OR_RETURN(
      auto query,
      CompiledQuery::Compile(c.query_text, c.catalog,
                             ConsistencySpec::Middle()));
  return DenoteQuery(query->bound(), ideals);
}

AuditResult DifferentialAuditor::Run(const AuditCase& c) {
  AuditResult result;
  if (c.single_op() == !c.query_text.empty()) {
    result.status = Status::InvalidArgument(
        "audit case must set exactly one of op_name / query_text");
    result.detail = result.status.ToString();
    return result;
  }
  auto oracle_r = Oracle(c);
  if (!oracle_r.ok()) {
    result.status = oracle_r.status();
    result.detail = StrCat("oracle error: ", result.status.ToString());
    return result;
  }
  EventList oracle = std::move(oracle_r).ValueUnsafe();
  if (c.single_op()) {
    return RunSingleOp(c, OpRegistry().at(c.op_name), oracle);
  }
  return RunWholeQuery(c, oracle);
}

}  // namespace audit
}  // namespace cedr
