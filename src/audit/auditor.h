// The differential oracle (DESIGN.md, "Differential auditing"): runs a
// compiled query or a single registry operator over a mutated schedule
// of a seeded workload - disorder within bounds, retraction injection,
// serial vs parallel execution, mid-stream snapshot/restore, and
// governor-driven consistency switches - to quiescence, coalesces the
// net output with Star(), and asserts logical equivalence against the
// denotational ideal.
//
// The equality claim follows Definition 6 (well-behavedness): at any
// M = inf point of the spectrum the converged output must Star-equal
// the denotation. Weak runs that actually lost corrections make no
// equality claim (the spec licenses the divergence); they still assert
// that the runtime terminates cleanly. Strong runs over retraction-free
// inputs additionally assert that no retraction was ever emitted;
// source-native retractions are data and may flow through.
#ifndef CEDR_AUDIT_AUDITOR_H_
#define CEDR_AUDIT_AUDITOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "consistency/spec.h"
#include "denotation/ideal.h"
#include "engine/source.h"
#include "lang/binder.h"
#include "ops/operator.h"
#include "workload/disorder.h"

namespace cedr {
namespace audit {

enum class ExecMode {
  kSerial,
  kParallel,
  /// Push a prefix, snapshot, restore into a fresh plan, push the rest.
  kSnapshotRestore,
  /// Run a SwitchableQuery, switching consistency level mid-stream
  /// (whole-query mode only; switch specs must keep M = inf so the
  /// spliced stream still converges to the ideal).
  kSwitchLevels,
};

const char* ExecModeToString(ExecMode mode);

struct ScheduleSpec {
  /// Reordering applied independently to every input stream.
  DisorderConfig disorder;
  ExecMode mode = ExecMode::kSerial;
  /// kParallel: worker threads.
  int workers = 4;
  /// kSnapshotRestore: fraction of the merged arrival stream pushed
  /// before the snapshot/restore cut.
  double snapshot_at = 0.5;
  /// kSwitchLevels: (fraction of merged stream, target spec) pairs.
  std::vector<std::pair<double, ConsistencySpec>> switches;
};

/// One audit case: a target (exactly one of op_name / query_text), a
/// consistency spec, ordered CTI-free input streams, and a schedule.
struct AuditCase {
  std::string name;
  /// Single-operator mode: a key of OpRegistry(). Input streams bind to
  /// ports by position ("in0", "in1", ...).
  std::string op_name;
  /// Whole-query mode: CEDR query text compiled against `catalog`.
  std::string query_text;
  Catalog catalog;
  ConsistencySpec spec = ConsistencySpec::Middle();
  /// Ordered by sync time, no CTIs (disorder regenerates them).
  std::vector<LabeledStream> inputs;
  ScheduleSpec schedule;

  bool single_op() const { return !op_name.empty(); }
};

struct AuditResult {
  /// False when the runtime errored or the converged output diverged
  /// from the denotational ideal.
  bool pass = false;
  /// True when the run lost corrections under a weak spec: the schedule
  /// executed to quiescence but no equality claim is made.
  bool skipped_equality = false;
  uint64_t lost_corrections = 0;
  uint64_t output_retracts = 0;
  Status status;
  /// On failure: what diverged, with both tables rendered.
  std::string detail;
};

/// A registry entry for single-operator audit mode: how to build the
/// runtime operator and how to evaluate its denotational counterpart.
struct OpSpec {
  int num_inputs = 1;
  /// Payload schema name ("kv" or "kvd") the operator expects.
  std::string input_schema = "kv";
  std::function<std::unique_ptr<Operator>(const ConsistencySpec&)> make;
  std::function<EventList(const std::vector<EventList>&)> denote;
};

/// Keyed by name: select, project, join, union, difference, groupby,
/// window, hopping.
const std::map<std::string, OpSpec>& OpRegistry();

class DifferentialAuditor {
 public:
  /// The denotational ideal of the case - over the *ordered* inputs,
  /// since the ideal is invariant under every schedule mutation.
  static Result<EventList> Oracle(const AuditCase& c);

  /// Runs the case's schedule to quiescence and compares against
  /// Oracle(). Never throws; every failure mode lands in the result.
  static AuditResult Run(const AuditCase& c);

  /// The disordered per-input arrival streams of the case (the
  /// workload the schedule actually feeds).
  static std::vector<LabeledStream> ArrivalStreams(const AuditCase& c);
};

}  // namespace audit
}  // namespace cedr

#endif  // CEDR_AUDIT_AUDITOR_H_
