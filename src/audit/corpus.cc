#include "audit/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "audit/generate.h"
#include "common/format.h"

namespace cedr {
namespace audit {

namespace {

std::string TimeToToken(Time t) {
  if (t == kInfinity) return "inf";
  return std::to_string(t);
}

Result<Time> TimeFromToken(const std::string& tok) {
  if (tok == "inf") return kInfinity;
  try {
    return static_cast<Time>(std::stoll(tok));
  } catch (...) {
    return Status::ParseError(StrCat("bad time token: ", tok));
  }
}

std::string ValueToToken(const Value& v) {
  if (v.type() == ValueType::kDouble) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    return buf;
  }
  return std::to_string(v.AsInt64());
}

Result<Value> ValueFromToken(const std::string& tok, ValueType type) {
  try {
    if (type == ValueType::kDouble) return Value(std::stod(tok));
    return Value(static_cast<int64_t>(std::stoll(tok)));
  } catch (...) {
    return Status::ParseError(StrCat("bad value token: ", tok));
  }
}

std::string SpecToTokens(const ConsistencySpec& spec) {
  return StrCat(TimeToToken(spec.max_blocking), " ",
                TimeToToken(spec.max_memory));
}

void FormatStream(std::string* out, const LabeledStream& stream,
                  const SchemaPtr& schema) {
  *out += StrCat("stream ", stream.event_type, " ", SchemaName(schema), "\n");
  for (const Message& m : stream.messages) {
    const Event& e = m.event;
    std::string payload;
    for (size_t i = 0; i < e.payload.size(); ++i) {
      payload += StrCat(" ", ValueToToken(e.payload.at(i)));
    }
    if (m.kind == MessageKind::kInsert) {
      *out += StrCat("i ", e.id, " ", TimeToToken(e.vs), " ",
                     TimeToToken(e.ve), " ", TimeToToken(m.cs), payload, "\n");
    } else if (m.kind == MessageKind::kRetract) {
      *out += StrCat("r ", e.id, " ", TimeToToken(e.vs), " ",
                     TimeToToken(e.ve), " ", TimeToToken(m.new_ve), " ",
                     TimeToToken(m.cs), payload, "\n");
    }
  }
  *out += "end\n";
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

Result<Row> ParsePayload(const std::vector<std::string>& toks, size_t from,
                         const SchemaPtr& schema) {
  if (schema == nullptr) {
    return Status::ParseError("message line before a stream schema");
  }
  if (toks.size() - from != schema->num_fields()) {
    return Status::ParseError(
        StrCat("payload arity mismatch: ", toks.size() - from, " vs ",
               schema->num_fields()));
  }
  std::vector<Value> values;
  for (size_t i = from; i < toks.size(); ++i) {
    CEDR_ASSIGN_OR_RETURN(
        Value v,
        ValueFromToken(toks[i], schema->fields()[i - from].type));
    values.push_back(std::move(v));
  }
  return Row(schema, std::move(values));
}

}  // namespace

std::string FormatCase(const AuditCase& c) {
  std::string out;
  out += StrCat("case ", c.name.empty() ? "unnamed" : c.name, "\n");
  if (!c.op_name.empty()) out += StrCat("op ", c.op_name, "\n");
  if (!c.query_text.empty()) {
    std::istringstream lines(c.query_text);
    std::string line;
    while (std::getline(lines, line)) out += StrCat("query ", line, "\n");
  }
  for (const auto& [type, schema] : c.catalog) {
    out += StrCat("schema ", type, " ", SchemaName(schema), "\n");
  }
  out += StrCat("spec ", SpecToTokens(c.spec), "\n");
  out += StrCat("mode ", ExecModeToString(c.schedule.mode), "\n");
  if (c.schedule.mode == ExecMode::kParallel) {
    out += StrCat("workers ", c.schedule.workers, "\n");
  }
  if (c.schedule.mode == ExecMode::kSnapshotRestore) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", c.schedule.snapshot_at);
    out += StrCat("snapshot_at ", buf, "\n");
  }
  for (const auto& [at, spec] : c.schedule.switches) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", at);
    out += StrCat("switch ", buf, " ", SpecToTokens(spec), "\n");
  }
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f",
                  c.schedule.disorder.disorder_fraction);
    out += StrCat("disorder ", buf, " ", c.schedule.disorder.max_delay, " ",
                  c.schedule.disorder.cti_period, " ",
                  c.schedule.disorder.seed, "\n");
  }
  for (const LabeledStream& stream : c.inputs) {
    SchemaPtr schema;
    if (!stream.messages.empty()) {
      schema = stream.messages.front().event.payload.schema();
    }
    if (schema == nullptr) schema = KvSchema();
    FormatStream(&out, stream, schema);
  }
  return out;
}

Result<AuditCase> ParseCase(const std::string& text) {
  AuditCase c;
  c.spec = ConsistencySpec::Middle();
  LabeledStream* current = nullptr;
  SchemaPtr current_schema;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::ParseError(StrCat("corpus line ", lineno, ": ", why));
    };
    std::vector<std::string> toks = Tokenize(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];

    if (current != nullptr) {
      if (kw == "end") {
        current = nullptr;
        current_schema = nullptr;
        continue;
      }
      if (kw == "i") {
        if (toks.size() < 5) return fail("insert needs id vs ve cs payload");
        CEDR_ASSIGN_OR_RETURN(Time vs, TimeFromToken(toks[2]));
        CEDR_ASSIGN_OR_RETURN(Time ve, TimeFromToken(toks[3]));
        CEDR_ASSIGN_OR_RETURN(Time cs, TimeFromToken(toks[4]));
        CEDR_ASSIGN_OR_RETURN(Row payload,
                              ParsePayload(toks, 5, current_schema));
        uint64_t id = 0;
        try {
          id = std::stoull(toks[1]);
        } catch (...) {
          return fail("bad event id");
        }
        Event e = MakeEvent(id, vs, ve, std::move(payload));
        e.cs = cs;
        current->messages.push_back(InsertOf(std::move(e), cs));
        continue;
      }
      if (kw == "r") {
        if (toks.size() < 6) {
          return fail("retract needs id vs old_ve new_ve cs payload");
        }
        CEDR_ASSIGN_OR_RETURN(Time vs, TimeFromToken(toks[2]));
        CEDR_ASSIGN_OR_RETURN(Time old_ve, TimeFromToken(toks[3]));
        CEDR_ASSIGN_OR_RETURN(Time new_ve, TimeFromToken(toks[4]));
        CEDR_ASSIGN_OR_RETURN(Time cs, TimeFromToken(toks[5]));
        CEDR_ASSIGN_OR_RETURN(Row payload,
                              ParsePayload(toks, 6, current_schema));
        uint64_t id = 0;
        try {
          id = std::stoull(toks[1]);
        } catch (...) {
          return fail("bad event id");
        }
        Event e = MakeEvent(id, vs, old_ve, std::move(payload));
        current->messages.push_back(RetractOf(e, new_ve, cs));
        continue;
      }
      return fail(StrCat("unknown message kind: ", kw));
    }

    if (kw == "case") {
      c.name = toks.size() > 1 ? toks[1] : "";
    } else if (kw == "op") {
      if (toks.size() != 2) return fail("op needs a registry name");
      c.op_name = toks[1];
    } else if (kw == "query") {
      std::string rest =
          line.size() > 6 ? line.substr(6) : std::string();
      if (!c.query_text.empty()) c.query_text += "\n";
      c.query_text += rest;
    } else if (kw == "schema") {
      if (toks.size() != 3) return fail("schema needs: type name");
      SchemaPtr schema = SchemaByName(toks[2]);
      if (schema == nullptr) return fail(StrCat("unknown schema ", toks[2]));
      c.catalog[toks[1]] = schema;
    } else if (kw == "spec") {
      if (toks.size() != 3) return fail("spec needs: B M");
      CEDR_ASSIGN_OR_RETURN(Time b, TimeFromToken(toks[1]));
      CEDR_ASSIGN_OR_RETURN(Time m, TimeFromToken(toks[2]));
      c.spec = ConsistencySpec::Custom(b, m);
    } else if (kw == "mode") {
      if (toks.size() != 2) return fail("mode needs a value");
      if (toks[1] == "serial") {
        c.schedule.mode = ExecMode::kSerial;
      } else if (toks[1] == "parallel") {
        c.schedule.mode = ExecMode::kParallel;
      } else if (toks[1] == "snapshot") {
        c.schedule.mode = ExecMode::kSnapshotRestore;
      } else if (toks[1] == "switch") {
        c.schedule.mode = ExecMode::kSwitchLevels;
      } else {
        return fail(StrCat("unknown mode ", toks[1]));
      }
    } else if (kw == "workers") {
      if (toks.size() != 2) return fail("workers needs a count");
      c.schedule.workers = std::atoi(toks[1].c_str());
    } else if (kw == "snapshot_at") {
      if (toks.size() != 2) return fail("snapshot_at needs a fraction");
      c.schedule.snapshot_at = std::atof(toks[1].c_str());
    } else if (kw == "switch") {
      if (toks.size() != 4) return fail("switch needs: frac B M");
      CEDR_ASSIGN_OR_RETURN(Time b, TimeFromToken(toks[2]));
      CEDR_ASSIGN_OR_RETURN(Time m, TimeFromToken(toks[3]));
      c.schedule.switches.emplace_back(std::atof(toks[1].c_str()),
                                       ConsistencySpec::Custom(b, m));
    } else if (kw == "disorder") {
      if (toks.size() != 5) {
        return fail("disorder needs: fraction max_delay cti_period seed");
      }
      c.schedule.disorder.disorder_fraction = std::atof(toks[1].c_str());
      CEDR_ASSIGN_OR_RETURN(c.schedule.disorder.max_delay,
                            TimeFromToken(toks[2]));
      CEDR_ASSIGN_OR_RETURN(c.schedule.disorder.cti_period,
                            TimeFromToken(toks[3]));
      try {
        c.schedule.disorder.seed = std::stoull(toks[4]);
      } catch (...) {
        return fail("bad disorder seed");
      }
    } else if (kw == "stream") {
      if (toks.size() != 3) return fail("stream needs: label schema");
      current_schema = SchemaByName(toks[2]);
      if (current_schema == nullptr) {
        return fail(StrCat("unknown schema ", toks[2]));
      }
      c.inputs.push_back({toks[1], {}});
      current = &c.inputs.back();
    } else {
      return fail(StrCat("unknown directive ", kw));
    }
  }
  if (current != nullptr) {
    return Status::ParseError("unterminated stream block (missing 'end')");
  }
  if (c.op_name.empty() == c.query_text.empty()) {
    return Status::ParseError(
        "corpus case must set exactly one of 'op' / 'query'");
  }
  return c;
}

Status SaveCase(const AuditCase& c, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument(StrCat("cannot open ", path));
  out << FormatCase(c);
  out.close();
  if (!out) return Status::Internal(StrCat("write failed: ", path));
  return Status::OK();
}

Result<AuditCase> LoadCase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::ostringstream buf;
  buf << in.rdbuf();
  CEDR_ASSIGN_OR_RETURN(AuditCase c, ParseCase(buf.str()));
  if (c.name.empty() || c.name == "unnamed") {
    c.name = std::filesystem::path(path).stem().string();
  }
  return c;
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace audit
}  // namespace cedr
