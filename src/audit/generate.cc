#include "audit/generate.h"

#include <algorithm>

#include "common/format.h"

namespace cedr {
namespace audit {

SchemaPtr KvSchema() {
  static const SchemaPtr schema =
      Schema::Make({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  return schema;
}

SchemaPtr KvdSchema() {
  static const SchemaPtr schema =
      Schema::Make({{"k", ValueType::kInt64}, {"v", ValueType::kDouble}});
  return schema;
}

SchemaPtr SchemaByName(const std::string& name) {
  if (name == "kv") return KvSchema();
  if (name == "kvd") return KvdSchema();
  return nullptr;
}

std::string SchemaName(const SchemaPtr& schema) {
  if (schema == nullptr) return "";
  if (schema->Equals(*KvSchema())) return "kv";
  if (schema->Equals(*KvdSchema())) return "kvd";
  return "";
}

Row KvRow(int64_t k, int64_t v) {
  return Row(KvSchema(), {Value(k), Value(v)});
}

Row KvdRow(int64_t k, double v) {
  return Row(KvdSchema(), {Value(k), Value(v)});
}

std::vector<Message> GenerateStream(Rng* rng, const StreamConfig& config,
                                    EventId first_id) {
  std::vector<Message> out;
  Time t = 1;
  for (int i = 0; i < config.events; ++i) {
    t = TimeAdd(t, rng->NextInt(0, 3));
    Time vs = t;
    Time ve =
        TimeAdd(vs, rng->NextInt(1, std::max<Time>(2, config.horizon / 4)));
    int64_t k = rng->NextInt(0, config.keys - 1);
    Row payload = config.double_values
                      ? KvdRow(k, static_cast<double>(rng->NextInt(0, 100)) / 4)
                      : KvRow(k, rng->NextInt(0, 100));
    Event e = MakeEvent(first_id + static_cast<EventId>(i), vs, ve, payload);
    out.push_back(InsertOf(e, vs));
    if (rng->NextBool(config.retract_fraction)) {
      Time new_ve = rng->NextBool(0.3) ? vs : TimeAdd(vs, (ve - vs) / 2);
      out.push_back(RetractOf(e, new_ve, vs));
    }
  }
  // Order by sync time and stamp monotone arrival timestamps; the
  // well-formed ordered stream is the input ApplyDisorder expects.
  std::stable_sort(out.begin(), out.end(),
                   [](const Message& a, const Message& b) {
                     return a.SyncTime() < b.SyncTime();
                   });
  Time cs = 1;
  for (Message& m : out) {
    m.cs = std::max(cs, m.SyncTime());
    if (m.kind == MessageKind::kInsert) m.event.cs = m.cs;
    cs = m.cs;
  }
  return out;
}

namespace {

/// Query templates over event types A, B, C (each with the kv schema)
/// covering SEQUENCE, NOT, ATLEAST, ALL, ANY, UNLESS, CANCEL-WHEN plus
/// predicates, output projection and temporal slices.
const std::vector<std::string>& QueryTemplates() {
  static const std::vector<std::string> templates = {
      "EVENT Q WHEN SEQUENCE(A AS x, B AS y, 20) WHERE {x.k = y.k}",
      "EVENT Q WHEN SEQUENCE(A AS x, B AS y, C AS z, 30)",
      "EVENT Q WHEN SEQUENCE(A AS x, B AS y, 25) WHERE {x.k = y.k} "
      "OUTPUT x.k AS k, y.v AS v",
      "EVENT Q WHEN ATLEAST(2, A, B, C, 25)",
      "EVENT Q WHEN ALL(A AS x, B AS y, 20) WHERE {x.k = y.k}",
      "EVENT Q WHEN ANY(A, B)",
      "EVENT Q WHEN UNLESS(SEQUENCE(A AS x, B AS y, 20), C AS z, 10) "
      "WHERE {x.k = z.k}",
      "EVENT Q WHEN NOT(C AS z, SEQUENCE(A AS x, B AS y, 25)) "
      "WHERE {x.k = y.k}",
      "EVENT Q WHEN SEQUENCE(A, B, 40) #[5, 45)",
      "EVENT Q WHEN SEQUENCE(A AS x, B AS y, 20) WHERE {x.v < y.v}",
  };
  return templates;
}

}  // namespace

AuditCase GenerateCase(uint64_t seed, uint64_t index) {
  Rng rng(SplitMix64(seed ^ SplitMix64(index + 1)));
  AuditCase c;
  c.name = StrCat("fuzz-", seed, "-", index);

  // Consistency spec: strong / middle / weak(M).
  Duration weak_memory = 0;
  switch (rng.NextBounded(3)) {
    case 0:
      c.spec = ConsistencySpec::Strong();
      break;
    case 1:
      c.spec = ConsistencySpec::Middle();
      break;
    default:
      weak_memory = rng.NextInt(8, 40);
      c.spec = ConsistencySpec::Weak(weak_memory);
      break;
  }

  // Schedule: disorder within bounds; weak specs keep the maximum delay
  // within the memory bound so repairs usually stay possible.
  c.schedule.disorder.disorder_fraction =
      static_cast<double>(rng.NextBounded(5)) / 10.0;  // 0 .. 0.4
  c.schedule.disorder.max_delay = rng.NextInt(0, 12);
  if (c.spec.IsWeak()) {
    c.schedule.disorder.max_delay =
        std::min<Duration>(c.schedule.disorder.max_delay, weak_memory / 2);
  }
  c.schedule.disorder.cti_period = rng.NextInt(5, 20);
  c.schedule.disorder.seed = SplitMix64(seed + index);

  // Target: a registry operator or a query template.
  const bool single_op = rng.NextBool(0.5);
  StreamConfig stream_config;
  stream_config.events = static_cast<int>(rng.NextInt(10, 40));
  stream_config.horizon = rng.NextInt(40, 80);
  stream_config.keys = static_cast<int>(rng.NextInt(2, 5));
  stream_config.retract_fraction =
      static_cast<double>(rng.NextBounded(4)) / 10.0;  // 0 .. 0.3

  if (single_op) {
    const auto& registry = OpRegistry();
    auto it = registry.begin();
    std::advance(it, rng.NextBounded(registry.size()));
    c.op_name = it->first;
    stream_config.double_values = it->second.input_schema == "kvd";
    for (int port = 0; port < it->second.num_inputs; ++port) {
      EventId base = 1 + static_cast<EventId>(port) * 100000;
      c.inputs.push_back({StrCat("in", port),
                          GenerateStream(&rng, stream_config, base)});
    }
    // Engine-level schedules have no single-op realization.
    c.schedule.mode = rng.NextBool(0.3) ? ExecMode::kSnapshotRestore
                                        : ExecMode::kSerial;
  } else {
    const auto& templates = QueryTemplates();
    c.query_text = templates[rng.NextBounded(templates.size())];
    c.catalog = {{"A", KvSchema()}, {"B", KvSchema()}, {"C", KvSchema()}};
    EventId base = 1;
    for (const char* type : {"A", "B", "C"}) {
      c.inputs.push_back({type, GenerateStream(&rng, stream_config, base)});
      base += 100000;
    }
    switch (rng.NextBounded(4)) {
      case 0:
        c.schedule.mode = ExecMode::kSerial;
        break;
      case 1:
        c.schedule.mode = ExecMode::kParallel;
        c.schedule.workers = static_cast<int>(rng.NextInt(2, 4));
        break;
      case 2:
        c.schedule.mode = ExecMode::kSnapshotRestore;
        c.schedule.snapshot_at =
            static_cast<double>(rng.NextInt(2, 8)) / 10.0;
        break;
      default:
        // Consistency switches require M = inf on every segment so the
        // spliced stream still converges to the ideal.
        c.schedule.mode = ExecMode::kSwitchLevels;
        if (c.spec.IsWeak()) c.spec = ConsistencySpec::Middle();
        c.schedule.switches = {
            {0.3, rng.NextBool(0.5) ? ConsistencySpec::Strong()
                                    : ConsistencySpec::Middle()},
            {0.7, rng.NextBool(0.5) ? ConsistencySpec::Middle()
                                    : ConsistencySpec::Strong()}};
        break;
    }
  }
  return c;
}

}  // namespace audit
}  // namespace cedr
