#include "audit/denote.h"

#include <algorithm>
#include <unordered_map>

#include "denotation/patterns.h"
#include "denotation/relational.h"

namespace cedr {
namespace audit {

namespace {

using plan::BoundLeaf;
using plan::BoundQuery;
using plan::kNegatedIndexBase;
using plan::LogicalKind;
using plan::LogicalNode;

void FlattenInto(const Event* e, std::vector<const Event*>* out) {
  if (e == nullptr) return;
  if (e->cbt.empty()) {
    out->push_back(e);
    return;
  }
  for (const EventRef& c : e->cbt) FlattenInto(c.get(), out);
}

/// Rebases positive contributor indices by -flat_lo; negated markers
/// (>= kNegatedIndexBase) are left untouched. Mirrors
/// plan/physical.cc's Rebase so injected predicates see identical
/// indices on both sides of the audit.
std::vector<AttributeComparison> Rebase(
    std::vector<AttributeComparison> comparisons, int flat_lo) {
  for (AttributeComparison& c : comparisons) {
    if (c.left_contributor < kNegatedIndexBase) c.left_contributor -= flat_lo;
    if (c.right_contributor >= 0 && c.right_contributor < kNegatedIndexBase) {
      c.right_contributor -= flat_lo;
    }
  }
  return comparisons;
}

class Evaluator {
 public:
  Evaluator(const BoundQuery& query,
            const std::map<std::string, EventList>& inputs)
      : q_(query), inputs_(inputs) {}

  Result<EventList> Eval() {
    if (q_.root == nullptr) {
      return Status::PlanError("bound query has no pattern root");
    }
    CEDR_ASSIGN_OR_RETURN(EventList out, EvalNode(*q_.root));

    if (!q_.output.empty()) {
      std::vector<int> indices;
      indices.reserve(q_.output.size());
      for (const plan::OutputColumn& col : q_.output) {
        indices.push_back(col.field_index);
      }
      SchemaPtr schema = q_.output_schema;
      out = denotation::Project(out, [indices, schema](const Row& row) {
        std::vector<Value> values;
        values.reserve(indices.size());
        for (int i : indices) {
          values.push_back(i < static_cast<int>(row.size())
                               ? row.at(static_cast<size_t>(i))
                               : Value::Null());
        }
        return Row(schema, std::move(values));
      });
    }
    if (q_.valid_slice.has_value()) {
      out = denotation::SliceValid(out, *q_.valid_slice);
    }
    if (q_.occurrence_slice.has_value()) {
      out = denotation::SliceOccurrence(out, *q_.occurrence_slice);
    }
    return out;
  }

 private:
  /// Payload-value offset of a positive flat index within the composite.
  int FieldOffset(int flat_index) const {
    int offset = 0;
    for (const BoundLeaf& leaf : q_.leaves) {
      if (!leaf.negated && leaf.flat_index < flat_index) {
        offset += static_cast<int>(leaf.schema->num_fields());
      }
    }
    return offset;
  }

  SchemaPtr SchemaSlice(int lo, int hi) const {
    if (q_.composite_schema == nullptr) return nullptr;
    int from = FieldOffset(lo);
    int to = FieldOffset(hi);
    std::vector<Field> fields(q_.composite_schema->fields().begin() + from,
                              q_.composite_schema->fields().begin() + to);
    return Schema::Make(std::move(fields));
  }

  /// The ideal input of a leaf: the event type's ideal table filtered by
  /// the leaf-local pushed-down predicate.
  EventList EvalLeaf(int leaf_id) const {
    const BoundLeaf& leaf = q_.leaves[leaf_id];
    auto it = inputs_.find(leaf.event_type);
    EventList events = it == inputs_.end() ? EventList{} : it->second;
    if (leaf.local_filter.empty()) return events;
    std::vector<AttributeComparison> filter = leaf.local_filter;
    return denotation::Select(events, [filter](const Row& row) {
      Event tmp;
      tmp.payload = row;
      std::vector<const Event*> tuple = {&tmp};
      for (const AttributeComparison& c : filter) {
        if (!c.Evaluate(tuple)) return false;
      }
      return true;
    });
  }

  /// A tuple predicate equivalent to the runtime's port-aware node
  /// predicate: each tuple element is located by address in its child's
  /// input list (the denotational enumerations iterate those lists in
  /// place), flattened at that child's flat offset, then the rebased
  /// comparisons are evaluated over the flat contributor vector.
  TuplePredicate MakeNodePredicate(
      const LogicalNode& node,
      const std::vector<const EventList*>& child_lists) const {
    if (node.tuple_comparisons.empty()) return TrueTuplePredicate();
    std::vector<AttributeComparison> comparisons =
        Rebase(node.tuple_comparisons, node.flat_lo);
    const int width = node.flat_hi - node.flat_lo;
    auto offsets = std::make_shared<std::unordered_map<const Event*, int>>();
    for (size_t i = 0; i < child_lists.size(); ++i) {
      int off = node.children[i]->flat_lo - node.flat_lo;
      for (const Event& e : *child_lists[i]) offsets->emplace(&e, off);
    }
    return [comparisons = std::move(comparisons), offsets,
            width](const std::vector<const Event*>& tuple) {
      std::vector<const Event*> flat(static_cast<size_t>(width), nullptr);
      std::vector<const Event*> leaves;
      for (const Event* e : tuple) {
        auto it = offsets->find(e);
        if (it == offsets->end()) continue;  // unknown origin: skip
        leaves.clear();
        FlattenInto(e, &leaves);
        size_t base = static_cast<size_t>(it->second);
        for (size_t j = 0;
             j < leaves.size() && base + j < static_cast<size_t>(width); ++j) {
          flat[base + j] = leaves[j];
        }
      }
      for (const AttributeComparison& c : comparisons) {
        if (!c.Evaluate(flat)) return false;
      }
      return true;
    };
  }

  NegationPredicate MakeNodeNegationPredicate(const LogicalNode& node) const {
    if (node.negation_comparisons.empty()) return TrueNegationPredicate();
    std::vector<AttributeComparison> comparisons =
        Rebase(node.negation_comparisons, node.flat_lo);
    const int negated_marker = q_.leaves[node.negated_leaf_id].flat_index;
    return [comparisons = std::move(comparisons), negated_marker](
               const std::vector<const Event*>& tuple, const Event& negated) {
      std::vector<const Event*> flat;
      for (const Event* e : tuple) FlattenInto(e, &flat);
      for (const AttributeComparison& c : comparisons) {
        if (!c.EvaluateWithNegated(flat, negated, negated_marker)) {
          return false;
        }
      }
      return true;
    };
  }

  /// Per-child single-event filter for pooled operators (ANY, ATMOST):
  /// the runtime evaluates node comparisons with the event placed at its
  /// originating port's flat offset; pooling strips the origin, so the
  /// filter is applied per child before the pool is formed.
  EventList FilterChild(const LogicalNode& node, size_t child_index,
                        const EventList& events) const {
    if (node.tuple_comparisons.empty()) return events;
    std::vector<AttributeComparison> comparisons =
        Rebase(node.tuple_comparisons, node.flat_lo);
    const int width = node.flat_hi - node.flat_lo;
    const int off = node.children[child_index]->flat_lo - node.flat_lo;
    EventList out;
    for (const Event& e : events) {
      std::vector<const Event*> flat(static_cast<size_t>(width), nullptr);
      std::vector<const Event*> leaves;
      FlattenInto(&e, &leaves);
      for (size_t j = 0;
           j < leaves.size() &&
           static_cast<size_t>(off) + j < static_cast<size_t>(width);
           ++j) {
        flat[static_cast<size_t>(off) + j] = leaves[j];
      }
      bool keep = true;
      for (const AttributeComparison& c : comparisons) {
        if (!c.Evaluate(flat)) {
          keep = false;
          break;
        }
      }
      if (keep) out.push_back(e);
    }
    return out;
  }

  Result<EventList> EvalPositiveChild(const LogicalNode& child) {
    if (child.kind == LogicalKind::kLeaf) return EvalLeaf(child.leaf_id);
    return EvalNode(child);
  }

  Result<EventList> EvalNode(const LogicalNode& node) {
    const size_t k = node.children.size();
    switch (node.kind) {
      case LogicalKind::kSequence:
      case LogicalKind::kAll:
      case LogicalKind::kAtLeast: {
        std::vector<EventList> child_events;
        child_events.reserve(k);
        for (const auto& child : node.children) {
          CEDR_ASSIGN_OR_RETURN(EventList events, EvalPositiveChild(*child));
          child_events.push_back(std::move(events));
        }
        std::vector<const EventList*> child_lists;
        for (const EventList& events : child_events) {
          child_lists.push_back(&events);
        }
        TuplePredicate pred = MakeNodePredicate(node, child_lists);
        if (node.kind == LogicalKind::kSequence) {
          return denotation::Sequence(child_events, node.scope, pred,
                                      SchemaSlice(node.flat_lo, node.flat_hi));
        }
        size_t n = node.kind == LogicalKind::kAll
                       ? k
                       : static_cast<size_t>(node.count);
        SchemaPtr schema =
            n == k ? SchemaSlice(node.flat_lo, node.flat_hi) : nullptr;
        return denotation::AtLeast(n, child_events, node.scope, pred,
                                   std::move(schema));
      }
      case LogicalKind::kAny: {
        // ANY tuples are single events; the node predicate reduces to a
        // per-child filter with the event at its own flat offset.
        std::vector<EventList> child_events;
        child_events.reserve(k);
        for (size_t i = 0; i < k; ++i) {
          CEDR_ASSIGN_OR_RETURN(EventList events,
                                EvalPositiveChild(*node.children[i]));
          child_events.push_back(FilterChild(node, i, events));
        }
        return denotation::Any(child_events);
      }
      case LogicalKind::kAtMost: {
        // ATMOST's window count is over the *unfiltered* pool (the
        // predicate only gates per-event eligibility, matching
        // AtMostOp), so children must not be pre-filtered. The pool
        // holds copies, so the eligibility predicate maps events to
        // their originating child by id instead of by address.
        std::vector<EventList> child_events;
        child_events.reserve(k);
        for (const auto& child : node.children) {
          CEDR_ASSIGN_OR_RETURN(EventList events, EvalPositiveChild(*child));
          child_events.push_back(std::move(events));
        }
        TuplePredicate pred = TrueTuplePredicate();
        if (!node.tuple_comparisons.empty()) {
          std::vector<AttributeComparison> comparisons =
              Rebase(node.tuple_comparisons, node.flat_lo);
          const int width = node.flat_hi - node.flat_lo;
          auto offsets = std::make_shared<std::unordered_map<EventId, int>>();
          for (size_t i = 0; i < k; ++i) {
            int off = node.children[i]->flat_lo - node.flat_lo;
            for (const Event& e : child_events[i]) {
              offsets->emplace(e.id, off);
            }
          }
          pred = [comparisons = std::move(comparisons), offsets,
                  width](const std::vector<const Event*>& tuple) {
            std::vector<const Event*> flat(static_cast<size_t>(width),
                                           nullptr);
            for (const Event* e : tuple) {
              auto it = offsets->find(e->id);
              if (it == offsets->end()) continue;
              std::vector<const Event*> leaves;
              FlattenInto(e, &leaves);
              size_t base = static_cast<size_t>(it->second);
              for (size_t j = 0; j < leaves.size() &&
                                 base + j < static_cast<size_t>(width);
                   ++j) {
                flat[base + j] = leaves[j];
              }
            }
            for (const AttributeComparison& c : comparisons) {
              if (!c.Evaluate(flat)) return false;
            }
            return true;
          };
        }
        return denotation::AtMost(static_cast<size_t>(node.count),
                                  child_events, node.scope, pred);
      }
      case LogicalKind::kUnless:
      case LogicalKind::kNot:
      case LogicalKind::kCancelWhen: {
        CEDR_ASSIGN_OR_RETURN(EventList positive,
                              EvalPositiveChild(*node.children[0]));
        EventList negated = EvalLeaf(node.negated_leaf_id);
        NegationPredicate neg = MakeNodeNegationPredicate(node);
        if (node.kind == LogicalKind::kUnless) {
          if (node.count > 0) {
            return denotation::UnlessPrime(positive, negated,
                                           static_cast<size_t>(node.count),
                                           node.scope, neg);
          }
          return denotation::Unless(positive, negated, node.scope, neg);
        }
        if (node.kind == LogicalKind::kNot) {
          return denotation::NotSequence(negated, positive, neg);
        }
        return denotation::CancelWhen(positive, negated, neg);
      }
      case LogicalKind::kLeaf:
        return Status::PlanError("cannot evaluate a bare leaf as a root");
    }
    return Status::PlanError("unknown logical node kind");
  }

  const BoundQuery& q_;
  const std::map<std::string, EventList>& inputs_;
};

}  // namespace

Result<EventList> DenoteQuery(const BoundQuery& query,
                              const std::map<std::string, EventList>& inputs) {
  Evaluator evaluator(query, inputs);
  return evaluator.Eval();
}

}  // namespace audit
}  // namespace cedr
