#include "audit/minimize.h"

#include <algorithm>
#include <map>

namespace cedr {
namespace audit {

namespace {

/// One reducible unit: an insert message and the retractions that
/// reference its id, in stream order.
struct EventGroup {
  std::vector<Message> messages;
};

std::vector<EventGroup> GroupStream(const std::vector<Message>& messages) {
  std::vector<EventGroup> groups;
  std::map<EventId, size_t> by_id;
  for (const Message& m : messages) {
    if (m.kind == MessageKind::kInsert) {
      by_id[m.event.id] = groups.size();
      groups.push_back({{m}});
    } else if (m.kind == MessageKind::kRetract) {
      auto it = by_id.find(m.event.id);
      if (it != by_id.end()) {
        groups[it->second].messages.push_back(m);
      } else {
        // A retract with no preceding insert: its own group, removable
        // independently.
        groups.push_back({{m}});
      }
    }
    // CTIs never appear in ordered audit inputs; drop defensively.
  }
  return groups;
}

/// Rebuilds a stream from the kept groups, restoring sync order.
std::vector<Message> UngroupStream(const std::vector<EventGroup>& groups,
                                   const std::vector<bool>& keep) {
  std::vector<Message> out;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (!keep[i]) continue;
    out.insert(out.end(), groups[i].messages.begin(),
               groups[i].messages.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Message& a, const Message& b) {
                     return a.SyncTime() < b.SyncTime();
                   });
  return out;
}

struct GroupedCase {
  /// Per input stream: its groups.
  std::vector<std::vector<EventGroup>> streams;
  /// Flat index: (stream, group) of every group across all streams.
  std::vector<std::pair<size_t, size_t>> flat;

  explicit GroupedCase(const AuditCase& c) {
    streams.reserve(c.inputs.size());
    for (size_t s = 0; s < c.inputs.size(); ++s) {
      streams.push_back(GroupStream(c.inputs[s].messages));
      for (size_t g = 0; g < streams.back().size(); ++g) {
        flat.emplace_back(s, g);
      }
    }
  }

  AuditCase Rebuild(const AuditCase& base,
                    const std::vector<bool>& keep_flat) const {
    AuditCase out = base;
    std::vector<std::vector<bool>> keep(streams.size());
    for (size_t s = 0; s < streams.size(); ++s) {
      keep[s].assign(streams[s].size(), false);
    }
    for (size_t i = 0; i < flat.size(); ++i) {
      if (keep_flat[i]) keep[flat[i].first][flat[i].second] = true;
    }
    for (size_t s = 0; s < streams.size(); ++s) {
      out.inputs[s].messages = UngroupStream(streams[s], keep[s]);
    }
    return out;
  }
};

/// Schedule simplifications in decreasing strength; each is kept only
/// if the failure survives it.
std::vector<std::function<void(AuditCase*)>> ScheduleSimplifications() {
  return {
      [](AuditCase* c) {
        c->schedule.disorder.disorder_fraction = 0;
        c->schedule.disorder.max_delay = 0;
      },
      [](AuditCase* c) { c->schedule.switches.clear(); },
      [](AuditCase* c) { c->schedule.mode = ExecMode::kSerial; },
      [](AuditCase* c) { c->schedule.disorder.cti_period = 10; },
  };
}

}  // namespace

MinimizeResult Minimize(const AuditCase& c, const FailurePredicate& fails,
                        size_t max_probes) {
  MinimizeResult result;
  result.minimized = c;
  size_t probes = 0;
  auto probe = [&](const AuditCase& candidate) {
    if (probes >= max_probes) return false;
    ++probes;
    return fails(candidate);
  };

  // Phase 1: schedule simplification (cheap wins first - a reproducer
  // that fails serially with no disorder is far easier to debug).
  for (const auto& simplify : ScheduleSimplifications()) {
    AuditCase candidate = result.minimized;
    simplify(&candidate);
    if (probe(candidate)) result.minimized = std::move(candidate);
  }

  // Phase 2: ddmin over event groups.
  GroupedCase grouped(result.minimized);
  const size_t n = grouped.flat.size();
  result.groups_before = n;
  std::vector<bool> keep(n, true);
  size_t kept = n;

  size_t chunk = (kept + 1) / 2;
  while (kept > 1 && probes < max_probes) {
    bool any_removed = false;
    size_t i = 0;
    while (i < n && probes < max_probes) {
      // Next window of up to `chunk` kept groups starting at i.
      std::vector<size_t> window;
      size_t j = i;
      for (; j < n && window.size() < chunk; ++j) {
        if (keep[j]) window.push_back(j);
      }
      if (window.empty()) break;
      std::vector<bool> candidate_keep = keep;
      for (size_t g : window) candidate_keep[g] = false;
      AuditCase candidate =
          grouped.Rebuild(result.minimized, candidate_keep);
      if (probe(candidate)) {
        keep = std::move(candidate_keep);
        kept -= window.size();
        any_removed = true;
      }
      i = j;
    }
    if (any_removed) continue;  // retry at the same granularity
    if (chunk == 1) break;
    chunk = std::max<size_t>(1, chunk / 2);
  }
  result.minimized = grouped.Rebuild(result.minimized, keep);

  // Phase 3: retry schedule simplification on the shrunk workload (a
  // smaller input often no longer needs the exotic schedule).
  for (const auto& simplify : ScheduleSimplifications()) {
    AuditCase candidate = result.minimized;
    simplify(&candidate);
    if (probe(candidate)) result.minimized = std::move(candidate);
  }

  result.groups_after = kept;
  result.probes = probes;
  return result;
}

MinimizeResult Minimize(const AuditCase& c, size_t max_probes) {
  return Minimize(
      c,
      [](const AuditCase& candidate) {
        return !DifferentialAuditor::Run(candidate).pass;
      },
      max_probes);
}

}  // namespace audit
}  // namespace cedr
