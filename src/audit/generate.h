// Seeded workload generation for the differential audit: deterministic
// ordered input streams over the two audit payload schemas and a random
// (workload, schedule) case generator spanning the operator registry,
// the pattern query templates, the consistency spectrum, and all
// execution modes. Same seed, same case - the fuzz driver's contract.
#ifndef CEDR_AUDIT_GENERATE_H_
#define CEDR_AUDIT_GENERATE_H_

#include "audit/auditor.h"
#include "common/rng.h"

namespace cedr {
namespace audit {

/// The audit payload schemas: "kv" = (k: int64, v: int64),
/// "kvd" = (k: int64, v: double).
SchemaPtr KvSchema();
SchemaPtr KvdSchema();
SchemaPtr SchemaByName(const std::string& name);
/// "kv" / "kvd"; empty for any other schema.
std::string SchemaName(const SchemaPtr& schema);

Row KvRow(int64_t k, int64_t v);
Row KvdRow(int64_t k, double v);

struct StreamConfig {
  int events = 40;
  /// Lifetimes start in [1, horizon); durations in [1, horizon / 4].
  Time horizon = 60;
  int keys = 4;
  double retract_fraction = 0.0;
  /// Use the (int64, double) payload schema instead of (int64, int64).
  bool double_values = false;
};

/// An ordered, CTI-free stream of inserts and retractions (retract ids
/// reference earlier inserts); event ids start at `first_id`.
std::vector<Message> GenerateStream(Rng* rng, const StreamConfig& config,
                                    EventId first_id = 1);

/// The `index`-th audit case of the seeded run: derives a per-case rng
/// from (seed, index) and draws the target (a registry operator or a
/// query template), the consistency spec, the input workload, and the
/// schedule. Weak specs keep disorder within the memory bound so lost
/// corrections stay the exception rather than the rule.
AuditCase GenerateCase(uint64_t seed, uint64_t index);

}  // namespace audit
}  // namespace cedr

#endif  // CEDR_AUDIT_GENERATE_H_
