// Delta-debugging minimizer: shrinks a failing (workload, schedule)
// audit case to a minimal reproducer. Reduction operates on *event
// groups* - an insert and every retraction that references it - so the
// shrunk streams stay well formed (a retract-of-unknown would itself be
// an anomaly and mask the original failure). Schedule simplification
// tries the cheapest schedule first: no disorder, serial execution, no
// switches.
#ifndef CEDR_AUDIT_MINIMIZE_H_
#define CEDR_AUDIT_MINIMIZE_H_

#include <functional>

#include "audit/auditor.h"

namespace cedr {
namespace audit {

/// True when the case still exhibits the failure being minimized. The
/// default oracle is "DifferentialAuditor::Run does not pass"; tests
/// inject synthetic predicates.
using FailurePredicate = std::function<bool(const AuditCase&)>;

struct MinimizeResult {
  AuditCase minimized;
  /// Total event-group count before / after.
  size_t groups_before = 0;
  size_t groups_after = 0;
  /// Predicate evaluations spent.
  size_t probes = 0;
};

/// ddmin over the case's event groups plus schedule simplification.
/// `fails` must be deterministic; the returned case still satisfies it.
/// Precondition: fails(c) is true.
MinimizeResult Minimize(const AuditCase& c, const FailurePredicate& fails,
                        size_t max_probes = 2000);

/// Convenience: minimize against the differential auditor itself.
MinimizeResult Minimize(const AuditCase& c, size_t max_probes = 2000);

}  // namespace audit
}  // namespace cedr

#endif  // CEDR_AUDIT_MINIMIZE_H_
