// Binary serialization for durable state (snapshots and journals).
//
// The format is a deterministic little-endian byte stream: fixed-width
// integers, length-prefixed strings, and explicit tags for variants.
// Writers never fail; readers return typed Status errors so corruption
// and truncation surface as kCorruption / kDataLoss instead of UB.
#ifndef CEDR_IO_SERDE_H_
#define CEDR_IO_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/status.h"
#include "common/time.h"
#include "consistency/spec.h"
#include "stream/message.h"

namespace cedr {
namespace io {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size`
/// bytes. Used to checksum snapshot payloads and journal records.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(const std::string& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Appends fixed-width little-endian primitives to an in-memory buffer.
/// All multi-byte values are written LSB-first regardless of host order,
/// so snapshots are portable across machines.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutTime(Time t) { PutI64(t); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);
  /// u64 length prefix + raw bytes.
  void PutString(const std::string& s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Reads the BinaryWriter format back. Running past the end of the
/// buffer yields kDataLoss (the bytes were truncated); structurally
/// invalid content (bad tags, absurd lengths) yields kCorruption.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<Time> GetTime() { return GetI64(); }
  Result<bool> GetBool();
  Result<double> GetDouble();
  Result<std::string> GetString();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// kCorruption unless every byte has been consumed (trailing garbage
  /// means the payload does not match the format version).
  Status ExpectEnd() const;

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
};

// Domain-type serde. Each WriteX has a matching ReadX that returns
// exactly the value written (modulo shared_ptr identity: schemas are
// reconstructed structurally).

/// Marker byte written by operators whose operational module holds no
/// state, so restore still detects framing drift.
inline constexpr uint8_t kStatelessMarker = 0xA5;
void WriteStatelessMarker(BinaryWriter* w);
Status ReadStatelessMarker(BinaryReader* r);

void WriteValue(BinaryWriter* w, const Value& v);
Result<Value> ReadValue(BinaryReader* r);

void WriteSchema(BinaryWriter* w, const SchemaPtr& schema);
Result<SchemaPtr> ReadSchema(BinaryReader* r);  // may return nullptr

void WriteRow(BinaryWriter* w, const Row& row);
Result<Row> ReadRow(BinaryReader* r);

void WriteEvent(BinaryWriter* w, const Event& e);
Result<Event> ReadEvent(BinaryReader* r);

void WriteMessage(BinaryWriter* w, const Message& m);
Result<Message> ReadMessage(BinaryReader* r);

void WriteValues(BinaryWriter* w, const std::vector<Value>& values);
Result<std::vector<Value>> ReadValues(BinaryReader* r);

void WriteEvents(BinaryWriter* w, const std::vector<Event>& events);
Result<std::vector<Event>> ReadEvents(BinaryReader* r);

void WriteSpec(BinaryWriter* w, const ConsistencySpec& spec);
Result<ConsistencySpec> ReadSpec(BinaryReader* r);

void WriteStatus(BinaryWriter* w, const Status& s);
/// Reads a serialized Status into *out (Result<Status> would be
/// ambiguous between the value and error constructors).
Status ReadStatus(BinaryReader* r, Status* out);

}  // namespace io
}  // namespace cedr

#endif  // CEDR_IO_SERDE_H_
