#include "io/serde.h"

#include <cstring>

namespace cedr {
namespace io {

namespace {

// Sanity bound on length prefixes: a single string or vector inside a
// snapshot should never exceed 1 GiB. Anything larger is a corrupted
// length, not real data.
constexpr uint64_t kMaxLength = uint64_t{1} << 30;

uint32_t CrcTableEntry(uint32_t i) {
  uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c;
}

const uint32_t* CrcTable() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) t[i] = CrcTableEntry(i);
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = CrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(const std::string& s) {
  PutU64(s.size());
  out_.append(s);
}

Result<uint8_t> BinaryReader::GetU8() {
  if (pos_ >= size_) {
    return Status::DataLoss("serde: unexpected end of input");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::GetU32() {
  if (size_ - pos_ < 4) {
    return Status::DataLoss("serde: unexpected end of input");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  if (size_ - pos_ < 8) {
    return Status::DataLoss("serde: unexpected end of input");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  CEDR_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<bool> BinaryReader::GetBool() {
  CEDR_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  if (v > 1) return Status::Corruption("serde: invalid bool byte");
  return v == 1;
}

Result<double> BinaryReader::GetDouble() {
  CEDR_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  CEDR_ASSIGN_OR_RETURN(uint64_t len, GetU64());
  if (len > kMaxLength) return Status::Corruption("serde: string too long");
  if (size_ - pos_ < len) {
    return Status::DataLoss("serde: truncated string");
  }
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Status BinaryReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::Corruption("serde: trailing bytes after payload");
  }
  return Status::OK();
}

void WriteStatelessMarker(BinaryWriter* w) { w->PutU8(kStatelessMarker); }

Status ReadStatelessMarker(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint8_t marker, r->GetU8());
  if (marker != kStatelessMarker) {
    return Status::Corruption("serde: bad stateless-operator marker");
  }
  return Status::OK();
}

void WriteValue(BinaryWriter* w, const Value& v) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(v.AsBool());
      break;
    case ValueType::kInt64:
      w->PutI64(v.AsInt64());
      break;
    case ValueType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      w->PutString(v.AsString());
      break;
  }
}

Result<Value> ReadValue(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      CEDR_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value(b);
    }
    case ValueType::kInt64: {
      CEDR_ASSIGN_OR_RETURN(int64_t i, r->GetI64());
      return Value(i);
    }
    case ValueType::kDouble: {
      CEDR_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value(d);
    }
    case ValueType::kString: {
      CEDR_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value(std::move(s));
    }
  }
  return Status::Corruption("serde: invalid value tag");
}

void WriteSchema(BinaryWriter* w, const SchemaPtr& schema) {
  if (schema == nullptr) {
    w->PutBool(false);
    return;
  }
  w->PutBool(true);
  w->PutU64(schema->num_fields());
  for (const Field& f : schema->fields()) {
    w->PutString(f.name);
    w->PutU8(static_cast<uint8_t>(f.type));
  }
}

Result<SchemaPtr> ReadSchema(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(bool present, r->GetBool());
  if (!present) return SchemaPtr(nullptr);
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxLength) return Status::Corruption("serde: schema too wide");
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Field f;
    CEDR_ASSIGN_OR_RETURN(f.name, r->GetString());
    CEDR_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Corruption("serde: invalid field type");
    }
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

void WriteRow(BinaryWriter* w, const Row& row) {
  WriteSchema(w, row.schema());
  w->PutU64(row.size());
  for (const Value& v : row.values()) WriteValue(w, v);
}

Result<Row> ReadRow(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(SchemaPtr schema, ReadSchema(r));
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxLength) return Status::Corruption("serde: row too wide");
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CEDR_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    values.push_back(std::move(v));
  }
  return Row(std::move(schema), std::move(values));
}

void WriteEvent(BinaryWriter* w, const Event& e) {
  w->PutU64(e.id);
  w->PutTime(e.vs);
  w->PutTime(e.ve);
  w->PutTime(e.os);
  w->PutTime(e.oe);
  w->PutTime(e.cs);
  w->PutTime(e.ce);
  w->PutU64(e.k);
  w->PutTime(e.rt);
  w->PutU64(e.cbt.size());
  for (const EventRef& c : e.cbt) WriteEvent(w, *c);
  WriteRow(w, e.payload);
}

Result<Event> ReadEvent(BinaryReader* r) {
  Event e;
  CEDR_ASSIGN_OR_RETURN(e.id, r->GetU64());
  CEDR_ASSIGN_OR_RETURN(e.vs, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(e.ve, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(e.os, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(e.oe, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(e.cs, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(e.ce, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(e.k, r->GetU64());
  CEDR_ASSIGN_OR_RETURN(e.rt, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxLength) return Status::Corruption("serde: cbt too long");
  e.cbt.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CEDR_ASSIGN_OR_RETURN(Event c, ReadEvent(r));
    e.cbt.push_back(std::make_shared<const Event>(std::move(c)));
  }
  CEDR_ASSIGN_OR_RETURN(e.payload, ReadRow(r));
  return e;
}

void WriteMessage(BinaryWriter* w, const Message& m) {
  w->PutU8(static_cast<uint8_t>(m.kind));
  WriteEvent(w, m.event);
  w->PutTime(m.new_ve);
  w->PutTime(m.time);
  w->PutTime(m.cs);
}

Result<Message> ReadMessage(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(MessageKind::kCti)) {
    return Status::Corruption("serde: invalid message kind");
  }
  Message m;
  m.kind = static_cast<MessageKind>(kind);
  CEDR_ASSIGN_OR_RETURN(m.event, ReadEvent(r));
  CEDR_ASSIGN_OR_RETURN(m.new_ve, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(m.time, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(m.cs, r->GetTime());
  return m;
}

void WriteValues(BinaryWriter* w, const std::vector<Value>& values) {
  w->PutU64(values.size());
  for (const Value& v : values) WriteValue(w, v);
}

Result<std::vector<Value>> ReadValues(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxLength) return Status::Corruption("serde: value list too long");
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CEDR_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    values.push_back(std::move(v));
  }
  return values;
}

void WriteEvents(BinaryWriter* w, const std::vector<Event>& events) {
  w->PutU64(events.size());
  for (const Event& e : events) WriteEvent(w, e);
}

Result<std::vector<Event>> ReadEvents(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxLength) return Status::Corruption("serde: event list too long");
  std::vector<Event> events;
  events.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CEDR_ASSIGN_OR_RETURN(Event e, ReadEvent(r));
    events.push_back(std::move(e));
  }
  return events;
}

void WriteSpec(BinaryWriter* w, const ConsistencySpec& spec) {
  w->PutI64(spec.max_blocking);
  w->PutI64(spec.max_memory);
}

Result<ConsistencySpec> ReadSpec(BinaryReader* r) {
  ConsistencySpec spec;
  CEDR_ASSIGN_OR_RETURN(spec.max_blocking, r->GetI64());
  CEDR_ASSIGN_OR_RETURN(spec.max_memory, r->GetI64());
  return spec;
}

void WriteStatus(BinaryWriter* w, const Status& s) {
  w->PutU8(static_cast<uint8_t>(s.code()));
  w->PutString(s.message());
}

Status ReadStatus(BinaryReader* r, Status* out) {
  CEDR_ASSIGN_OR_RETURN(uint8_t code, r->GetU8());
  if (code > static_cast<uint8_t>(StatusCode::kCorruption)) {
    return Status::Corruption("serde: invalid status code");
  }
  CEDR_ASSIGN_OR_RETURN(std::string msg, r->GetString());
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

}  // namespace io
}  // namespace cedr
