// Snapshot envelope: versioned, checksummed framing for durable state.
//
// Layout:  magic "CEDRSNP1" (8 bytes)
//          u32 format version
//          u64 payload length
//          payload bytes
//          u32 CRC-32 of the payload
//
// OpenSnapshot distinguishes the two failure modes the recovery path
// cares about: bytes missing (truncation -> kDataLoss) versus bytes
// present but wrong (bad magic/version/checksum -> kCorruption).
#ifndef CEDR_IO_SNAPSHOT_H_
#define CEDR_IO_SNAPSHOT_H_

#include <string>

#include "io/serde.h"

namespace cedr {
namespace io {

inline constexpr char kSnapshotMagic[] = "CEDRSNP1";  // 8 chars + NUL
inline constexpr uint32_t kSnapshotVersion = 1;

/// Wraps a serialized payload in the versioned, checksummed envelope.
std::string SealSnapshot(const std::string& payload);

/// Validates the envelope and returns the payload. Truncated input is
/// kDataLoss; bad magic, unsupported version, or checksum mismatch is
/// kCorruption.
Result<std::string> OpenSnapshot(const std::string& bytes);

}  // namespace io
}  // namespace cedr

#endif  // CEDR_IO_SNAPSHOT_H_
