// Snapshot envelope: versioned, checksummed framing for durable state.
//
// Layout:  magic "CEDRSNP1" (8 bytes)
//          u32 format version
//          u64 payload length
//          payload bytes
//          u32 CRC-32 of the payload
//
// OpenSnapshot distinguishes the two failure modes the recovery path
// cares about: bytes missing (truncation -> kDataLoss) versus bytes
// present but wrong (bad magic/version/checksum -> kCorruption).
#ifndef CEDR_IO_SNAPSHOT_H_
#define CEDR_IO_SNAPSHOT_H_

#include <string>

#include "io/serde.h"

namespace cedr {
namespace io {

inline constexpr char kSnapshotMagic[] = "CEDRSNP1";  // 8 chars + NUL
inline constexpr uint32_t kSnapshotVersion = 1;

/// Wraps a serialized payload in the versioned, checksummed envelope.
std::string SealSnapshot(const std::string& payload);

/// Validates the envelope and returns the payload. Truncated input is
/// kDataLoss; bad magic, unsupported version, or checksum mismatch is
/// kCorruption.
Result<std::string> OpenSnapshot(const std::string& bytes);

/// Crash-atomically persists sealed snapshot bytes to `path`: the bytes
/// are written to `path + ".tmp"`, flushed, and renamed into place.
/// rename(2) replaces the destination atomically, so a crash at any
/// point leaves either the previous snapshot or the new one - never a
/// half-written file as the latest snapshot. A stale `.tmp` from an
/// earlier crash is simply overwritten.
Status SaveSnapshotFile(const std::string& path, const std::string& sealed);

/// Reads snapshot bytes written by SaveSnapshotFile. A missing file is
/// kDataLoss (crash before the first save, or the artifact was lost);
/// the bytes are returned as-is for OpenSnapshot to validate.
Result<std::string> LoadSnapshotFile(const std::string& path);

}  // namespace io
}  // namespace cedr

#endif  // CEDR_IO_SNAPSHOT_H_
