// Input journal: a write-ahead log of the service's ingress API calls.
//
// Layout:  magic "CEDRWAL1" (8 bytes)
//          u32 format version
//          u64 base index (count of records already folded into the
//              paired snapshot; replay starts after it)
//          records*, each:  u32 payload length
//                           payload bytes (one serialized JournalRecord)
//                           u32 CRC-32 of the payload
//
// A torn tail (a partial final record, the footprint of a crash
// mid-append) is treated as a clean end-of-journal: the intact prefix
// is returned and `torn_tail` is set, because the torn record was by
// definition never acknowledged. A record whose checksum fails is
// kCorruption. Records are appended only after the service has accepted
// the corresponding call, so every journaled record replays cleanly
// against the restored snapshot.
#ifndef CEDR_IO_JOURNAL_H_
#define CEDR_IO_JOURNAL_H_

#include <string>
#include <vector>

#include "io/serde.h"

namespace cedr {
namespace io {

inline constexpr char kJournalMagic[] = "CEDRWAL1";  // 8 chars + NUL
// Version 2 adds the per-source session fields (source, seq) and the
// kEpoch record.
inline constexpr uint32_t kJournalVersion = 2;

enum class JournalOp : uint8_t {
  kRegisterType = 0,
  kRegisterQuery,
  kUnregisterQuery,
  kPublish,
  kRetract,
  kSyncPoint,
  kFinish,
  /// A source-session epoch boundary: source attach (epoch 0, with its
  /// owned event types) or reconnect (epoch bump). Replaying epoch
  /// records restores session fencing state, so a recovered supervisor
  /// rejects stale providers and resumes sequence checking where the
  /// original left off.
  kEpoch,
};

/// One logged ingress call. Which fields are meaningful depends on op:
///   kRegisterType:    name (event type), schema
///   kRegisterQuery:   name (query), text, has_spec / spec
///   kUnregisterQuery: name
///   kPublish:         name (event type), event
///   kRetract:         name (event type), event (id + original ve), new_ve
///   kSyncPoint:       name (event type), time
///   kFinish:          (none)
///   kEpoch:           name (source), seq (epoch number), text
///                     (space-joined owned event types; attach only)
///
/// `source` and `seq` additionally tag every supervised ingress call
/// with the session that produced it and its per-source sequence
/// number; both are empty/zero for unsupervised (plain DurableService)
/// ingress and for supervisor-synthesized calls.
struct JournalRecord {
  JournalOp op = JournalOp::kPublish;
  std::string name;
  std::string text;
  SchemaPtr schema;
  bool has_spec = false;
  ConsistencySpec spec;
  Event event;
  Time new_ve = 0;
  Time time = 0;
  std::string source;
  uint64_t seq = 0;
};

/// Append-only writer over an in-memory byte string. The caller owns the
/// bytes (e.g. DurableService keeps them next to its snapshot).
class JournalWriter {
 public:
  JournalWriter() { Reset(0); }

  /// Starts a fresh journal whose records begin at `base_index`.
  void Reset(uint64_t base_index);

  void Append(const JournalRecord& record);

  uint64_t base_index() const { return base_index_; }
  uint64_t num_records() const { return num_records_; }
  /// base_index + num_records: the index the *next* record would get.
  uint64_t next_index() const { return base_index_ + num_records_; }

  const std::string& bytes() const { return bytes_; }
  std::string* mutable_bytes() { return &bytes_; }

 private:
  std::string bytes_;
  uint64_t base_index_ = 0;
  uint64_t num_records_ = 0;
};

/// Parsed journal: header plus all intact records.
struct JournalContents {
  uint64_t base_index = 0;
  std::vector<JournalRecord> records;
  /// True when the bytes ended in a partial record (crash mid-append).
  /// The torn suffix was never acknowledged, so the intact prefix is
  /// the complete history; callers may log the tear but must not fail.
  bool torn_tail = false;
};

/// Parses journal bytes. A truncated header is kDataLoss; bad
/// magic/version or a failed record checksum is kCorruption; a torn
/// final record is a clean end-of-journal (see JournalContents).
Result<JournalContents> ReadJournal(const std::string& bytes);

void WriteJournalRecord(BinaryWriter* w, const JournalRecord& record);
Result<JournalRecord> ReadJournalRecord(BinaryReader* r);

}  // namespace io
}  // namespace cedr

#endif  // CEDR_IO_JOURNAL_H_
