#include "io/snapshot.h"

#include <cstdio>
#include <cstring>

namespace cedr {
namespace io {

namespace {
constexpr size_t kMagicSize = 8;
// magic + version + payload length.
constexpr size_t kHeaderSize = kMagicSize + 4 + 8;
}  // namespace

std::string SealSnapshot(const std::string& payload) {
  BinaryWriter w;
  std::string out(kSnapshotMagic, kMagicSize);
  w.PutU32(kSnapshotVersion);
  w.PutU64(payload.size());
  out += w.Take();
  out += payload;
  BinaryWriter crc;
  crc.PutU32(Crc32(payload));
  out += crc.Take();
  return out;
}

Result<std::string> OpenSnapshot(const std::string& bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("snapshot: truncated header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, kMagicSize) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  BinaryReader header(bytes.data() + kMagicSize, kHeaderSize - kMagicSize);
  CEDR_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unsupported format version " +
                              std::to_string(version));
  }
  CEDR_ASSIGN_OR_RETURN(uint64_t payload_size, header.GetU64());
  if (bytes.size() < kHeaderSize + payload_size + 4) {
    return Status::DataLoss("snapshot: truncated payload");
  }
  std::string payload = bytes.substr(kHeaderSize, payload_size);
  BinaryReader footer(bytes.data() + kHeaderSize + payload_size, 4);
  CEDR_ASSIGN_OR_RETURN(uint32_t stored_crc, footer.GetU32());
  if (stored_crc != Crc32(payload)) {
    return Status::Corruption("snapshot: checksum mismatch");
  }
  return payload;
}

Status SaveSnapshotFile(const std::string& path, const std::string& sealed) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::ExecutionError("snapshot: cannot open " + tmp);
  }
  const size_t written =
      sealed.empty() ? 0 : std::fwrite(sealed.data(), 1, sealed.size(), f);
  const bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != sealed.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::ExecutionError("snapshot: short write to " + tmp);
  }
  // The commit point. Before the rename the previous snapshot at `path`
  // is untouched; after it the new one is fully in place.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::ExecutionError("snapshot: cannot rename " + tmp +
                                  " into place");
  }
  return Status::OK();
}

Result<std::string> LoadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::DataLoss("snapshot: no file at " + path);
  }
  std::string bytes;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::ExecutionError("snapshot: read error on " + path);
  }
  return bytes;
}

}  // namespace io
}  // namespace cedr
