#include "io/snapshot.h"

#include <cstring>

namespace cedr {
namespace io {

namespace {
constexpr size_t kMagicSize = 8;
// magic + version + payload length.
constexpr size_t kHeaderSize = kMagicSize + 4 + 8;
}  // namespace

std::string SealSnapshot(const std::string& payload) {
  BinaryWriter w;
  std::string out(kSnapshotMagic, kMagicSize);
  w.PutU32(kSnapshotVersion);
  w.PutU64(payload.size());
  out += w.Take();
  out += payload;
  BinaryWriter crc;
  crc.PutU32(Crc32(payload));
  out += crc.Take();
  return out;
}

Result<std::string> OpenSnapshot(const std::string& bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("snapshot: truncated header");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, kMagicSize) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  BinaryReader header(bytes.data() + kMagicSize, kHeaderSize - kMagicSize);
  CEDR_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unsupported format version " +
                              std::to_string(version));
  }
  CEDR_ASSIGN_OR_RETURN(uint64_t payload_size, header.GetU64());
  if (bytes.size() < kHeaderSize + payload_size + 4) {
    return Status::DataLoss("snapshot: truncated payload");
  }
  std::string payload = bytes.substr(kHeaderSize, payload_size);
  BinaryReader footer(bytes.data() + kHeaderSize + payload_size, 4);
  CEDR_ASSIGN_OR_RETURN(uint32_t stored_crc, footer.GetU32());
  if (stored_crc != Crc32(payload)) {
    return Status::Corruption("snapshot: checksum mismatch");
  }
  return payload;
}

}  // namespace io
}  // namespace cedr
