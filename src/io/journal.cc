#include "io/journal.h"

#include <cstring>

namespace cedr {
namespace io {

namespace {
constexpr size_t kMagicSize = 8;
constexpr size_t kHeaderSize = kMagicSize + 4 + 8;
}  // namespace

void WriteJournalRecord(BinaryWriter* w, const JournalRecord& record) {
  w->PutU8(static_cast<uint8_t>(record.op));
  w->PutString(record.name);
  w->PutString(record.text);
  WriteSchema(w, record.schema);
  w->PutBool(record.has_spec);
  WriteSpec(w, record.spec);
  WriteEvent(w, record.event);
  w->PutTime(record.new_ve);
  w->PutTime(record.time);
  w->PutString(record.source);
  w->PutU64(record.seq);
}

Result<JournalRecord> ReadJournalRecord(BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
  if (op > static_cast<uint8_t>(JournalOp::kEpoch)) {
    return Status::Corruption("journal: invalid record op");
  }
  JournalRecord record;
  record.op = static_cast<JournalOp>(op);
  CEDR_ASSIGN_OR_RETURN(record.name, r->GetString());
  CEDR_ASSIGN_OR_RETURN(record.text, r->GetString());
  CEDR_ASSIGN_OR_RETURN(record.schema, ReadSchema(r));
  CEDR_ASSIGN_OR_RETURN(record.has_spec, r->GetBool());
  CEDR_ASSIGN_OR_RETURN(record.spec, ReadSpec(r));
  CEDR_ASSIGN_OR_RETURN(record.event, ReadEvent(r));
  CEDR_ASSIGN_OR_RETURN(record.new_ve, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(record.time, r->GetTime());
  CEDR_ASSIGN_OR_RETURN(record.source, r->GetString());
  CEDR_ASSIGN_OR_RETURN(record.seq, r->GetU64());
  return record;
}

void JournalWriter::Reset(uint64_t base_index) {
  base_index_ = base_index;
  num_records_ = 0;
  bytes_.assign(kJournalMagic, kMagicSize);
  BinaryWriter w;
  w.PutU32(kJournalVersion);
  w.PutU64(base_index);
  bytes_ += w.Take();
}

void JournalWriter::Append(const JournalRecord& record) {
  BinaryWriter payload;
  WriteJournalRecord(&payload, record);
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  bytes_ += frame.Take();
  bytes_ += payload.bytes();
  BinaryWriter crc;
  crc.PutU32(Crc32(payload.bytes()));
  bytes_ += crc.Take();
  ++num_records_;
}

Result<JournalContents> ReadJournal(const std::string& bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("journal: truncated header");
  }
  if (std::memcmp(bytes.data(), kJournalMagic, kMagicSize) != 0) {
    return Status::Corruption("journal: bad magic");
  }
  BinaryReader header(bytes.data() + kMagicSize, kHeaderSize - kMagicSize);
  CEDR_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kJournalVersion) {
    return Status::Corruption("journal: unsupported format version " +
                              std::to_string(version));
  }
  JournalContents contents;
  CEDR_ASSIGN_OR_RETURN(contents.base_index, header.GetU64());

  size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    // A partial final record is the footprint of a crash mid-append.
    // The call it framed was never acknowledged, so the intact prefix
    // is the complete accepted history: stop cleanly instead of
    // erroring (the classic WAL torn-tail discipline).
    if (bytes.size() - pos < 4) {
      contents.torn_tail = true;
      break;
    }
    BinaryReader len_reader(bytes.data() + pos, 4);
    CEDR_ASSIGN_OR_RETURN(uint32_t len, len_reader.GetU32());
    pos += 4;
    if (bytes.size() - pos < static_cast<size_t>(len) + 4) {
      contents.torn_tail = true;
      break;
    }
    std::string payload(bytes.data() + pos, len);
    pos += len;
    BinaryReader crc_reader(bytes.data() + pos, 4);
    CEDR_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.GetU32());
    pos += 4;
    if (stored_crc != Crc32(payload)) {
      return Status::Corruption("journal: record checksum mismatch");
    }
    BinaryReader record_reader(payload);
    CEDR_ASSIGN_OR_RETURN(JournalRecord record,
                          ReadJournalRecord(&record_reader));
    CEDR_RETURN_NOT_OK(record_reader.ExpectEnd());
    contents.records.push_back(std::move(record));
  }
  return contents;
}

}  // namespace io
}  // namespace cedr
