#include "consistency/guarantee.h"

#include <algorithm>

namespace cedr {

GuaranteeTracker::GuaranteeTracker(int num_ports)
    : guarantees_(num_ports, kMinTime), watermarks_(num_ports, kMinTime) {}

void GuaranteeTracker::OnCti(int port, Time t) {
  guarantees_[port] = std::max(guarantees_[port], t);
  watermarks_[port] = std::max(watermarks_[port], t);
}

void GuaranteeTracker::OnSync(int port, Time sync) {
  watermarks_[port] = std::max(watermarks_[port], sync);
}

Time GuaranteeTracker::CombinedGuarantee() const {
  Time g = kInfinity;
  for (Time t : guarantees_) g = std::min(g, t);
  return g;
}

Time GuaranteeTracker::CombinedWatermark() const {
  Time w = kInfinity;
  for (Time t : watermarks_) w = std::min(w, t);
  return w;
}

Time GuaranteeTracker::MaxWatermark() const {
  Time w = kMinTime;
  for (Time t : watermarks_) w = std::max(w, t);
  return w;
}

}  // namespace cedr
