#include "consistency/guarantee.h"

#include <algorithm>

namespace cedr {

GuaranteeTracker::GuaranteeTracker(int num_ports)
    : guarantees_(num_ports, kMinTime), watermarks_(num_ports, kMinTime) {}

void GuaranteeTracker::OnCti(int port, Time t) {
  guarantees_[port] = std::max(guarantees_[port], t);
  watermarks_[port] = std::max(watermarks_[port], t);
}

void GuaranteeTracker::OnSync(int port, Time sync) {
  watermarks_[port] = std::max(watermarks_[port], sync);
}

Time GuaranteeTracker::CombinedGuarantee() const {
  Time g = kInfinity;
  for (Time t : guarantees_) g = std::min(g, t);
  return g;
}

Time GuaranteeTracker::CombinedWatermark() const {
  Time w = kInfinity;
  for (Time t : watermarks_) w = std::min(w, t);
  return w;
}

Time GuaranteeTracker::MaxWatermark() const {
  Time w = kMinTime;
  for (Time t : watermarks_) w = std::max(w, t);
  return w;
}

void GuaranteeTracker::Snapshot(io::BinaryWriter* w) const {
  w->PutU64(guarantees_.size());
  for (Time t : guarantees_) w->PutTime(t);
  for (Time t : watermarks_) w->PutTime(t);
}

Status GuaranteeTracker::Restore(io::BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n != guarantees_.size()) {
    return Status::Corruption("guarantee tracker: port count mismatch");
  }
  for (Time& t : guarantees_) {
    CEDR_ASSIGN_OR_RETURN(t, r->GetTime());
  }
  for (Time& t : watermarks_) {
    CEDR_ASSIGN_OR_RETURN(t, r->GetTime());
  }
  return Status::OK();
}

}  // namespace cedr
