#include "consistency/budget.h"

#include "common/format.h"

namespace cedr {

namespace {
std::string SizeLabel(size_t v) {
  return v == QueryBudget::kUnboundedSize ? "unbounded" : std::to_string(v);
}
}  // namespace

std::string QueryBudget::ToString() const {
  if (Unlimited()) return "budget(unlimited)";
  return StrCat("budget(footprint<=", SizeLabel(max_state_footprint),
                ", buffer<=", SizeLabel(max_buffer),
                ", blocking/check<=", TimeToString(max_blocking_per_check),
                ")");
}

}  // namespace cedr
