// Per-query resource budgets for consistency-sensitive optimization
// (Section 5 future work: a system that "switches consistency levels
// under load"). A budget bounds what a query is allowed to cost while
// running at its requested level; the supervisor's governor watches
// QueryStats against the budget and degrades the level (strong ->
// middle -> weak) under sustained violation, restoring the requested
// level once pressure clears.
//
// Budgets are expressed over *current* occupancy and *per-check*
// blocking deltas, not high-water marks: a governor keyed to peaks
// could never observe recovery.
#ifndef CEDR_CONSISTENCY_BUDGET_H_
#define CEDR_CONSISTENCY_BUDGET_H_

#include <cstddef>
#include <limits>
#include <string>

#include "common/time.h"

namespace cedr {

struct QueryBudget {
  static constexpr size_t kUnboundedSize =
      std::numeric_limits<size_t>::max();

  /// Largest tolerable current state footprint (events held across the
  /// plan's operators plus alignment buffers).
  size_t max_state_footprint = kUnboundedSize;
  /// Largest tolerable current alignment-buffer occupancy (messages
  /// blocked waiting for stragglers).
  size_t max_buffer = kUnboundedSize;
  /// Largest tolerable blocking accumulated between two consecutive
  /// governor checks (application-time units).
  Duration max_blocking_per_check = kInfinity;

  bool Unlimited() const {
    return max_state_footprint == kUnboundedSize &&
           max_buffer == kUnboundedSize &&
           max_blocking_per_check == kInfinity;
  }

  /// True when the observed load exceeds the budget. `blocking_delta` is
  /// the blocking accumulated since the previous check.
  bool Violated(size_t cur_footprint, size_t cur_buffer,
                Duration blocking_delta) const {
    return cur_footprint > max_state_footprint || cur_buffer > max_buffer ||
           blocking_delta > max_blocking_per_check;
  }

  std::string ToString() const;
};

}  // namespace cedr

#endif  // CEDR_CONSISTENCY_BUDGET_H_
