// Occurrence-time guarantee tracking (Figure 7: "guarantees on input
// time" in, "consistency guarantees" out).
//
// A guarantee g on a stream promises that every subsequent message has
// sync time >= g (CTIs are the wire form). GuaranteeTracker combines the
// per-port guarantees and watermarks of an n-ary operator.
#ifndef CEDR_CONSISTENCY_GUARANTEE_H_
#define CEDR_CONSISTENCY_GUARANTEE_H_

#include <vector>

#include "common/time.h"
#include "io/serde.h"

namespace cedr {

class GuaranteeTracker {
 public:
  explicit GuaranteeTracker(int num_ports = 1);

  int num_ports() const { return static_cast<int>(guarantees_.size()); }

  /// Records a CTI on a port. Guarantees never regress.
  void OnCti(int port, Time t);
  /// Records an event sync time on a port (advances the watermark).
  void OnSync(int port, Time sync);

  /// The guarantee of one port.
  Time guarantee(int port) const { return guarantees_[port]; }
  /// The combined input guarantee: min over ports (no future message on
  /// any port has sync below it).
  Time CombinedGuarantee() const;

  /// Highest sync time seen on a port / across all ports.
  Time watermark(int port) const { return watermarks_[port]; }
  /// Min over ports: the common progress (used for repair horizons).
  Time CombinedWatermark() const;
  /// Max over ports: the operator's notion of "now" (used for
  /// optimistic emission deadlines).
  Time MaxWatermark() const;

  /// Serializes per-port guarantees and watermarks for checkpointing.
  void Snapshot(io::BinaryWriter* w) const;
  /// Restores into a tracker constructed with the same port count;
  /// kCorruption on a port-count mismatch.
  Status Restore(io::BinaryReader* r);

 private:
  std::vector<Time> guarantees_;
  std::vector<Time> watermarks_;
};

}  // namespace cedr

#endif  // CEDR_CONSISTENCY_GUARANTEE_H_
