#include "consistency/retraction.h"

#include <algorithm>

#include "common/hash.h"

namespace cedr {

void RepairableOutput::Reconcile(const std::vector<Value>& group,
                                 const std::vector<Event>& correct,
                                 Time frontier,
                                 const EmitInsertFn& emit_insert,
                                 const EmitRetractFn& emit_retract) {
  // The correct relation, clipped to [frontier, inf).
  std::map<Row, IntervalSet> want;
  for (const Event& e : correct) {
    Interval iv = e.valid().Intersect(Interval{frontier, kInfinity});
    if (!iv.empty()) want[e.payload].Add(iv);
  }

  std::vector<Event>& live = emitted_[group];
  std::vector<Event> survivors;
  survivors.reserve(live.size());

  for (Event& emitted : live) {
    // The repairable view of this event starts at the frontier: output
    // before it is final by construction.
    Time a = std::max(emitted.vs, frontier);
    Time b = emitted.ve;
    if (b <= frontier) {
      // Entirely final; keep until Trim collects it.
      survivors.push_back(emitted);
      continue;
    }
    auto want_it = want.find(emitted.payload);
    // Largest x such that [a, x) is within a single wanted interval
    // covering a. If a is not covered at all, the event must end at a.
    Time x = a;
    if (want_it != want.end()) {
      for (const Interval& iv : want_it->second.intervals()) {
        if (iv.start <= a && a < iv.end) {
          x = std::min(b, iv.end);
          break;
        }
      }
    }
    if (x < b) {
      emit_retract(emitted, x);
      emitted.ve = x;
    }
    if (x > a && want_it != want.end()) {
      // Mark the kept extent as satisfied.
      want_it->second.Subtract(Interval{a, x});
    }
    if (!emitted.valid().empty()) survivors.push_back(emitted);
  }

  // Whatever remains wanted is uncovered: emit fresh inserts.
  for (auto& [payload, set] : want) {
    for (const Interval& iv : set.intervals()) {
      if (iv.empty()) continue;
      Event e;
      size_t seed = payload.Hash();
      for (const Value& v : group) HashCombine(&seed, v.Hash());
      e.id = IdGen({static_cast<EventId>(seed),
                    static_cast<EventId>(++fresh_counter_)});
      e.k = e.id;
      e.vs = iv.start;
      e.ve = iv.end;
      e.os = iv.start;
      e.rt = iv.start;
      e.payload = payload;
      survivors.push_back(e);
      emit_insert(e);
    }
  }

  if (survivors.empty()) {
    emitted_.erase(group);
  } else {
    live = std::move(survivors);
  }
}

void RepairableOutput::Trim(Time horizon) {
  for (auto it = emitted_.begin(); it != emitted_.end();) {
    std::vector<Event>& live = it->second;
    live.erase(std::remove_if(live.begin(), live.end(),
                              [horizon](const Event& e) {
                                return e.ve <= horizon;
                              }),
               live.end());
    if (live.empty()) {
      it = emitted_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t RepairableOutput::StateSize() const {
  size_t n = 0;
  for (const auto& [group, live] : emitted_) n += live.size();
  return n;
}

void RepairableOutput::Snapshot(io::BinaryWriter* w) const {
  w->PutU64(fresh_counter_);
  w->PutU64(emitted_.size());
  for (const auto& [group, live] : emitted_) {
    io::WriteValues(w, group);
    io::WriteEvents(w, live);
  }
}

Status RepairableOutput::Restore(io::BinaryReader* r) {
  CEDR_ASSIGN_OR_RETURN(fresh_counter_, r->GetU64());
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  emitted_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    CEDR_ASSIGN_OR_RETURN(std::vector<Value> group, io::ReadValues(r));
    CEDR_ASSIGN_OR_RETURN(std::vector<Event> live, io::ReadEvents(r));
    emitted_.emplace(std::move(group), std::move(live));
  }
  return Status::OK();
}

}  // namespace cedr
