// ConsistencyMonitor (Figure 7): the per-operator component that decides
// whether to block input in alignment buffers until output can be
// produced at the desired consistency level, and that tracks the
// guarantees used to reduce operator state at all levels.
#ifndef CEDR_CONSISTENCY_MONITOR_H_
#define CEDR_CONSISTENCY_MONITOR_H_

#include <memory>
#include <vector>

#include "consistency/guarantee.h"
#include "consistency/spec.h"
#include "ops/alignment_buffer.h"

namespace cedr {

class ConsistencyMonitor {
 public:
  ConsistencyMonitor(ConsistencySpec spec, int num_ports);

  const ConsistencySpec& spec() const { return spec_; }
  int num_ports() const { return static_cast<int>(buffers_.size()); }

  /// Pushes a message through the port's alignment buffer; appends the
  /// messages released to the operational module (possibly none, possibly
  /// several) to `released`, in sync order. The caller owns `released`
  /// (typically a reusable scratch buffer — no per-message allocation).
  void Offer(int port, const Message& msg, Time now_cs,
             std::vector<Message>* released);

  /// Fast path: true when `msg` passes the port's alignment buffer
  /// directly (nothing buffered ahead of it, nothing retained); the
  /// caller dispatches `msg` itself without copying it. False with no
  /// state change when the full Offer path is needed.
  bool OfferDirect(int port, const Message& msg, Time now_cs);

  /// Releases everything still blocked (end of stream); appends to
  /// `released`.
  void Drain(int port, Time now_cs, std::vector<Message>* released);

  /// Records a released message as it is handed to the operational
  /// module. Must be called per message, in dispatch order, so that the
  /// guarantee an operator observes while processing a message reflects
  /// only the CTIs dispatched *before* it (a CTI released in the same
  /// batch as the inserts it unblocked must not be visible early - that
  /// would let strong consistency emit provisional output).
  void NoteDispatch(int port, const Message& msg);

  /// Combined input guarantee as seen by the operational module.
  Time InputGuarantee() const { return tracker_.CombinedGuarantee(); }
  Time PortGuarantee(int port) const { return tracker_.guarantee(port); }
  Time Watermark() const { return tracker_.CombinedWatermark(); }
  Time MaxWatermark() const { return tracker_.MaxWatermark(); }

  /// State older than this can be forgotten; corrections older than this
  /// are lost (weak consistency). max(guarantee, watermark - M).
  Time RepairHorizon() const;

  size_t BufferedCount() const;
  AlignmentStats CombinedBufferStats() const;

  /// Serializes the guarantee tracker and every port's alignment buffer.
  void Snapshot(io::BinaryWriter* w) const;
  /// Restores into a monitor constructed with the same spec and port
  /// count; kCorruption on a port-count mismatch.
  Status Restore(io::BinaryReader* r);

 private:
  ConsistencySpec spec_;  // effective (B clamped to M)
  std::vector<std::unique_ptr<AlignmentBuffer>> buffers_;
  GuaranteeTracker tracker_;
};

}  // namespace cedr

#endif  // CEDR_CONSISTENCY_MONITOR_H_
