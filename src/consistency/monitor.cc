#include "consistency/monitor.h"

#include <algorithm>

namespace cedr {

ConsistencyMonitor::ConsistencyMonitor(ConsistencySpec spec, int num_ports)
    : spec_(spec.Effective()), tracker_(num_ports) {
  buffers_.reserve(num_ports);
  for (int i = 0; i < num_ports; ++i) {
    buffers_.push_back(std::make_unique<AlignmentBuffer>(spec_.max_blocking));
  }
}

void ConsistencyMonitor::Offer(int port, const Message& msg, Time now_cs,
                               std::vector<Message>* released) {
  buffers_[port]->Offer(msg, now_cs, released);
}

bool ConsistencyMonitor::OfferDirect(int port, const Message& msg,
                                     Time now_cs) {
  return buffers_[port]->OfferDirect(msg, now_cs);
}

void ConsistencyMonitor::Drain(int port, Time now_cs,
                               std::vector<Message>* released) {
  buffers_[port]->Drain(now_cs, released);
}

void ConsistencyMonitor::NoteDispatch(int port, const Message& msg) {
  if (msg.kind == MessageKind::kCti) {
    tracker_.OnCti(port, msg.time);
  } else {
    tracker_.OnSync(port, msg.SyncTime());
  }
}

Time ConsistencyMonitor::RepairHorizon() const {
  Time horizon = tracker_.CombinedGuarantee();
  if (spec_.max_memory != kInfinity) {
    Time watermark = tracker_.CombinedWatermark();
    if (watermark != kMinTime && watermark != kInfinity) {
      horizon = std::max(horizon, TimeSub(watermark, spec_.max_memory));
    }
  }
  return horizon;
}

size_t ConsistencyMonitor::BufferedCount() const {
  size_t n = 0;
  for (const auto& b : buffers_) n += b->size();
  return n;
}

void ConsistencyMonitor::Snapshot(io::BinaryWriter* w) const {
  tracker_.Snapshot(w);
  w->PutU64(buffers_.size());
  for (const auto& b : buffers_) b->Snapshot(w);
}

Status ConsistencyMonitor::Restore(io::BinaryReader* r) {
  CEDR_RETURN_NOT_OK(tracker_.Restore(r));
  CEDR_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n != buffers_.size()) {
    return Status::Corruption("consistency monitor: port count mismatch");
  }
  for (auto& b : buffers_) {
    CEDR_RETURN_NOT_OK(b->Restore(r));
  }
  return Status::OK();
}

AlignmentStats ConsistencyMonitor::CombinedBufferStats() const {
  AlignmentStats out;
  for (const auto& b : buffers_) {
    const AlignmentStats& s = b->stats();
    out.merged_retractions += s.merged_retractions;
    out.annihilated_inserts += s.annihilated_inserts;
    out.max_size = std::max(out.max_size, s.max_size);
    out.total_blocking_cs += s.total_blocking_cs;
    out.max_blocking_cs = std::max(out.max_blocking_cs, s.max_blocking_cs);
    out.released += s.released;
  }
  return out;
}

}  // namespace cedr
