// Consistency levels (Sections 4 and 5).
//
// The paper's three named levels are points in a two-dimensional spectrum
// (Figure 9): maximum memory time M (how far back an operator will
// remember enough to repair optimistic output with retractions) and
// maximum blocking time B (how long an operator will hold events in its
// alignment buffer waiting for stragglers), both in application time.
//
//   strong = (M = inf, B = inf)   block until guaranteed, never retract;
//   middle = (M = inf, B = 0)     emit optimistically, repair everything;
//   weak   = (M finite, B = 0)    emit optimistically, repair only what
//                                 is still remembered.
//
// Increasing B beyond M has no effect (the interesting region is the
// lower-right triangle B <= M): blocking an event for longer than the
// operator remembers is impossible, so the effective spec clamps B to M.
#ifndef CEDR_CONSISTENCY_SPEC_H_
#define CEDR_CONSISTENCY_SPEC_H_

#include <string>

#include "common/time.h"

namespace cedr {

struct ConsistencySpec {
  /// Maximum blocking time B (application time). kInfinity blocks until
  /// a guarantee covers the buffered messages.
  Duration max_blocking = kInfinity;
  /// Maximum memory time M (application time). kInfinity remembers
  /// everything needed for complete repair.
  Duration max_memory = kInfinity;

  static ConsistencySpec Strong() { return {kInfinity, kInfinity}; }
  static ConsistencySpec Middle() { return {0, kInfinity}; }
  static ConsistencySpec Weak(Duration memory = 0) { return {0, memory}; }
  static ConsistencySpec Custom(Duration blocking, Duration memory) {
    return {blocking, memory};
  }

  /// The behavioral spec: B clamped to min(B, M) (Figure 9).
  ConsistencySpec Effective() const {
    return {max_blocking > max_memory ? max_memory : max_blocking,
            max_memory};
  }

  bool IsStrong() const {
    return max_blocking == kInfinity && max_memory == kInfinity;
  }
  bool IsMiddle() const {
    return max_blocking == 0 && max_memory == kInfinity;
  }
  bool IsWeak() const { return max_memory != kInfinity; }

  bool operator==(const ConsistencySpec& other) const = default;

  std::string ToString() const;
};

}  // namespace cedr

#endif  // CEDR_CONSISTENCY_SPEC_H_
