// RepairableOutput: retraction-based repair of optimistically emitted
// output (the middle/weak consistency mechanism of Sections 4 and 5).
//
// An operator that computes per-group output fragments (aggregation,
// difference) reconciles the currently-correct fragment set against what
// it previously emitted:
//   * a fragment that shrank is repaired with a retraction;
//   * a fragment whose prefix is wrong cannot be repaired in place
//     (retractions only reduce end times), so the old event is fully
//     retracted and a corrected event is inserted with a fresh id -
//     exactly the paper's "completely remove the old event ... then
//     insert a new event" protocol from Section 4;
//   * a missing fragment (or a grown suffix) is repaired with an insert.
// Output strictly before `frontier` is final and never touched, which
// keeps emitted CTIs truthful.
#ifndef CEDR_CONSISTENCY_RETRACTION_H_
#define CEDR_CONSISTENCY_RETRACTION_H_

#include <functional>
#include <map>
#include <vector>

#include "io/serde.h"
#include "stream/coalesce.h"
#include "stream/event.h"

namespace cedr {

class RepairableOutput {
 public:
  using EmitInsertFn = std::function<void(Event)>;
  using EmitRetractFn = std::function<void(const Event&, Time)>;

  /// Reconciles the correct output for `group` (fragments with payloads
  /// and lifetimes; overlap with equal payload is unioned) against the
  /// group's previously emitted live events, restricted to times >=
  /// `frontier`. Emits the minimal insert/retract repair sequence.
  void Reconcile(const std::vector<Value>& group,
                 const std::vector<Event>& correct, Time frontier,
                 const EmitInsertFn& emit_insert,
                 const EmitRetractFn& emit_retract);

  /// Forgets bookkeeping for emitted events that ended at or before
  /// `horizon` (they can no longer be repaired).
  void Trim(Time horizon);

  /// Number of emitted events still tracked.
  size_t StateSize() const;

  /// Serializes the emitted-event bookkeeping and the fresh-id counter
  /// (the counter makes repair ids deterministic across recovery).
  void Snapshot(io::BinaryWriter* w) const;
  Status Restore(io::BinaryReader* r);

 private:
  std::map<std::vector<Value>, std::vector<Event>> emitted_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace cedr

#endif  // CEDR_CONSISTENCY_RETRACTION_H_
