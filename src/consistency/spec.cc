#include "consistency/spec.h"

#include "common/format.h"

namespace cedr {

std::string ConsistencySpec::ToString() const {
  if (IsStrong()) return "strong";
  if (IsMiddle()) return "middle";
  if (max_blocking == 0 && max_memory == 0) return "weak";
  return StrCat("custom(B=", TimeToString(max_blocking),
                ", M=", TimeToString(max_memory), ")");
}

}  // namespace cedr
