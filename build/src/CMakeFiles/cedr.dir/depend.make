# Empty dependencies file for cedr.
# This may be replaced when dependencies are built.
