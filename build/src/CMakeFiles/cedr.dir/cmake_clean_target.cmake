file(REMOVE_RECURSE
  "libcedr.a"
)
