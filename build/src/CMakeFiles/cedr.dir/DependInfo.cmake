
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/point_engine.cc" "src/CMakeFiles/cedr.dir/baseline/point_engine.cc.o" "gcc" "src/CMakeFiles/cedr.dir/baseline/point_engine.cc.o.d"
  "/root/repo/src/common/format.cc" "src/CMakeFiles/cedr.dir/common/format.cc.o" "gcc" "src/CMakeFiles/cedr.dir/common/format.cc.o.d"
  "/root/repo/src/common/row.cc" "src/CMakeFiles/cedr.dir/common/row.cc.o" "gcc" "src/CMakeFiles/cedr.dir/common/row.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/cedr.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/cedr.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cedr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cedr.dir/common/status.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/cedr.dir/common/time.cc.o" "gcc" "src/CMakeFiles/cedr.dir/common/time.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/cedr.dir/common/value.cc.o" "gcc" "src/CMakeFiles/cedr.dir/common/value.cc.o.d"
  "/root/repo/src/consistency/guarantee.cc" "src/CMakeFiles/cedr.dir/consistency/guarantee.cc.o" "gcc" "src/CMakeFiles/cedr.dir/consistency/guarantee.cc.o.d"
  "/root/repo/src/consistency/monitor.cc" "src/CMakeFiles/cedr.dir/consistency/monitor.cc.o" "gcc" "src/CMakeFiles/cedr.dir/consistency/monitor.cc.o.d"
  "/root/repo/src/consistency/retraction.cc" "src/CMakeFiles/cedr.dir/consistency/retraction.cc.o" "gcc" "src/CMakeFiles/cedr.dir/consistency/retraction.cc.o.d"
  "/root/repo/src/consistency/spec.cc" "src/CMakeFiles/cedr.dir/consistency/spec.cc.o" "gcc" "src/CMakeFiles/cedr.dir/consistency/spec.cc.o.d"
  "/root/repo/src/denotation/ideal.cc" "src/CMakeFiles/cedr.dir/denotation/ideal.cc.o" "gcc" "src/CMakeFiles/cedr.dir/denotation/ideal.cc.o.d"
  "/root/repo/src/denotation/patterns.cc" "src/CMakeFiles/cedr.dir/denotation/patterns.cc.o" "gcc" "src/CMakeFiles/cedr.dir/denotation/patterns.cc.o.d"
  "/root/repo/src/denotation/relational.cc" "src/CMakeFiles/cedr.dir/denotation/relational.cc.o" "gcc" "src/CMakeFiles/cedr.dir/denotation/relational.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/cedr.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/CMakeFiles/cedr.dir/engine/query.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/query.cc.o.d"
  "/root/repo/src/engine/service.cc" "src/CMakeFiles/cedr.dir/engine/service.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/service.cc.o.d"
  "/root/repo/src/engine/sink.cc" "src/CMakeFiles/cedr.dir/engine/sink.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/sink.cc.o.d"
  "/root/repo/src/engine/source.cc" "src/CMakeFiles/cedr.dir/engine/source.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/source.cc.o.d"
  "/root/repo/src/engine/stats.cc" "src/CMakeFiles/cedr.dir/engine/stats.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/stats.cc.o.d"
  "/root/repo/src/engine/switching.cc" "src/CMakeFiles/cedr.dir/engine/switching.cc.o" "gcc" "src/CMakeFiles/cedr.dir/engine/switching.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/cedr.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/cedr.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/binder.cc" "src/CMakeFiles/cedr.dir/lang/binder.cc.o" "gcc" "src/CMakeFiles/cedr.dir/lang/binder.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/cedr.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/cedr.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/cedr.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/cedr.dir/lang/parser.cc.o.d"
  "/root/repo/src/ops/aggregate.cc" "src/CMakeFiles/cedr.dir/ops/aggregate.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/aggregate.cc.o.d"
  "/root/repo/src/ops/alignment_buffer.cc" "src/CMakeFiles/cedr.dir/ops/alignment_buffer.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/alignment_buffer.cc.o.d"
  "/root/repo/src/ops/alter_lifetime.cc" "src/CMakeFiles/cedr.dir/ops/alter_lifetime.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/alter_lifetime.cc.o.d"
  "/root/repo/src/ops/difference.cc" "src/CMakeFiles/cedr.dir/ops/difference.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/difference.cc.o.d"
  "/root/repo/src/ops/groupby.cc" "src/CMakeFiles/cedr.dir/ops/groupby.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/groupby.cc.o.d"
  "/root/repo/src/ops/join.cc" "src/CMakeFiles/cedr.dir/ops/join.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/join.cc.o.d"
  "/root/repo/src/ops/operator.cc" "src/CMakeFiles/cedr.dir/ops/operator.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/operator.cc.o.d"
  "/root/repo/src/ops/project.cc" "src/CMakeFiles/cedr.dir/ops/project.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/project.cc.o.d"
  "/root/repo/src/ops/select.cc" "src/CMakeFiles/cedr.dir/ops/select.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/select.cc.o.d"
  "/root/repo/src/ops/union_op.cc" "src/CMakeFiles/cedr.dir/ops/union_op.cc.o" "gcc" "src/CMakeFiles/cedr.dir/ops/union_op.cc.o.d"
  "/root/repo/src/pattern/cancel_when.cc" "src/CMakeFiles/cedr.dir/pattern/cancel_when.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/cancel_when.cc.o.d"
  "/root/repo/src/pattern/counting.cc" "src/CMakeFiles/cedr.dir/pattern/counting.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/counting.cc.o.d"
  "/root/repo/src/pattern/instance.cc" "src/CMakeFiles/cedr.dir/pattern/instance.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/instance.cc.o.d"
  "/root/repo/src/pattern/negation.cc" "src/CMakeFiles/cedr.dir/pattern/negation.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/negation.cc.o.d"
  "/root/repo/src/pattern/predicate.cc" "src/CMakeFiles/cedr.dir/pattern/predicate.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/predicate.cc.o.d"
  "/root/repo/src/pattern/sc_mode.cc" "src/CMakeFiles/cedr.dir/pattern/sc_mode.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/sc_mode.cc.o.d"
  "/root/repo/src/pattern/sequence.cc" "src/CMakeFiles/cedr.dir/pattern/sequence.cc.o" "gcc" "src/CMakeFiles/cedr.dir/pattern/sequence.cc.o.d"
  "/root/repo/src/plan/logical.cc" "src/CMakeFiles/cedr.dir/plan/logical.cc.o" "gcc" "src/CMakeFiles/cedr.dir/plan/logical.cc.o.d"
  "/root/repo/src/plan/optimizer.cc" "src/CMakeFiles/cedr.dir/plan/optimizer.cc.o" "gcc" "src/CMakeFiles/cedr.dir/plan/optimizer.cc.o.d"
  "/root/repo/src/plan/physical.cc" "src/CMakeFiles/cedr.dir/plan/physical.cc.o" "gcc" "src/CMakeFiles/cedr.dir/plan/physical.cc.o.d"
  "/root/repo/src/plan/rules.cc" "src/CMakeFiles/cedr.dir/plan/rules.cc.o" "gcc" "src/CMakeFiles/cedr.dir/plan/rules.cc.o.d"
  "/root/repo/src/stream/bitemporal.cc" "src/CMakeFiles/cedr.dir/stream/bitemporal.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/bitemporal.cc.o.d"
  "/root/repo/src/stream/canonical.cc" "src/CMakeFiles/cedr.dir/stream/canonical.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/canonical.cc.o.d"
  "/root/repo/src/stream/coalesce.cc" "src/CMakeFiles/cedr.dir/stream/coalesce.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/coalesce.cc.o.d"
  "/root/repo/src/stream/equivalence.cc" "src/CMakeFiles/cedr.dir/stream/equivalence.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/equivalence.cc.o.d"
  "/root/repo/src/stream/event.cc" "src/CMakeFiles/cedr.dir/stream/event.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/event.cc.o.d"
  "/root/repo/src/stream/history_table.cc" "src/CMakeFiles/cedr.dir/stream/history_table.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/history_table.cc.o.d"
  "/root/repo/src/stream/message.cc" "src/CMakeFiles/cedr.dir/stream/message.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/message.cc.o.d"
  "/root/repo/src/stream/sync.cc" "src/CMakeFiles/cedr.dir/stream/sync.cc.o" "gcc" "src/CMakeFiles/cedr.dir/stream/sync.cc.o.d"
  "/root/repo/src/workload/disorder.cc" "src/CMakeFiles/cedr.dir/workload/disorder.cc.o" "gcc" "src/CMakeFiles/cedr.dir/workload/disorder.cc.o.d"
  "/root/repo/src/workload/financial.cc" "src/CMakeFiles/cedr.dir/workload/financial.cc.o" "gcc" "src/CMakeFiles/cedr.dir/workload/financial.cc.o.d"
  "/root/repo/src/workload/machines.cc" "src/CMakeFiles/cedr.dir/workload/machines.cc.o" "gcc" "src/CMakeFiles/cedr.dir/workload/machines.cc.o.d"
  "/root/repo/src/workload/news.cc" "src/CMakeFiles/cedr.dir/workload/news.cc.o" "gcc" "src/CMakeFiles/cedr.dir/workload/news.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
