file(REMOVE_RECURSE
  "CMakeFiles/compliance_audit.dir/compliance_audit.cpp.o"
  "CMakeFiles/compliance_audit.dir/compliance_audit.cpp.o.d"
  "compliance_audit"
  "compliance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compliance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
