file(REMOVE_RECURSE
  "CMakeFiles/event_service.dir/event_service.cpp.o"
  "CMakeFiles/event_service.dir/event_service.cpp.o.d"
  "event_service"
  "event_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
