# Empty compiler generated dependencies file for event_service.
# This may be replaced when dependencies are built.
