# Empty dependencies file for portfolio_dashboard.
# This may be replaced when dependencies are built.
