# Empty compiler generated dependencies file for portfolio_dashboard.
# This may be replaced when dependencies are built.
