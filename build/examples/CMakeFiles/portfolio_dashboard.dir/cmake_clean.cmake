file(REMOVE_RECURSE
  "CMakeFiles/portfolio_dashboard.dir/portfolio_dashboard.cpp.o"
  "CMakeFiles/portfolio_dashboard.dir/portfolio_dashboard.cpp.o.d"
  "portfolio_dashboard"
  "portfolio_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
