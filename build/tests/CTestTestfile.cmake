# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/denotation_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
