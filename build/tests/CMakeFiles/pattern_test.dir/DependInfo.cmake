
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pattern/counting_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/counting_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/counting_test.cc.o.d"
  "/root/repo/tests/pattern/instance_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/instance_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/instance_test.cc.o.d"
  "/root/repo/tests/pattern/negation_stress_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/negation_stress_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/negation_stress_test.cc.o.d"
  "/root/repo/tests/pattern/negation_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/negation_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/negation_test.cc.o.d"
  "/root/repo/tests/pattern/predicate_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/predicate_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/predicate_test.cc.o.d"
  "/root/repo/tests/pattern/sequence_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/sequence_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/sequence_test.cc.o.d"
  "/root/repo/tests/pattern/unless_prime_test.cc" "tests/CMakeFiles/pattern_test.dir/pattern/unless_prime_test.cc.o" "gcc" "tests/CMakeFiles/pattern_test.dir/pattern/unless_prime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cedr.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/cedr_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
