file(REMOVE_RECURSE
  "CMakeFiles/pattern_test.dir/pattern/counting_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/counting_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/instance_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/instance_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/negation_stress_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/negation_stress_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/negation_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/negation_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/predicate_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/predicate_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/sequence_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/sequence_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/unless_prime_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/unless_prime_test.cc.o.d"
  "pattern_test"
  "pattern_test.pdb"
  "pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
