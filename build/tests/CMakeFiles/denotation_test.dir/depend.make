# Empty dependencies file for denotation_test.
# This may be replaced when dependencies are built.
