file(REMOVE_RECURSE
  "CMakeFiles/denotation_test.dir/denotation/patterns_test.cc.o"
  "CMakeFiles/denotation_test.dir/denotation/patterns_test.cc.o.d"
  "CMakeFiles/denotation_test.dir/denotation/relational_test.cc.o"
  "CMakeFiles/denotation_test.dir/denotation/relational_test.cc.o.d"
  "denotation_test"
  "denotation_test.pdb"
  "denotation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
