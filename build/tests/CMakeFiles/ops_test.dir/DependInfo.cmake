
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops/alignment_test.cc" "tests/CMakeFiles/ops_test.dir/ops/alignment_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/alignment_test.cc.o.d"
  "/root/repo/tests/ops/consistency_test.cc" "tests/CMakeFiles/ops_test.dir/ops/consistency_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/consistency_test.cc.o.d"
  "/root/repo/tests/ops/operator_test.cc" "tests/CMakeFiles/ops_test.dir/ops/operator_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/operator_test.cc.o.d"
  "/root/repo/tests/ops/relational_ops_test.cc" "tests/CMakeFiles/ops_test.dir/ops/relational_ops_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/relational_ops_test.cc.o.d"
  "/root/repo/tests/ops/strong_invariants_test.cc" "tests/CMakeFiles/ops_test.dir/ops/strong_invariants_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/strong_invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cedr.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/cedr_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
