
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stream/bitemporal_test.cc" "tests/CMakeFiles/stream_test.dir/stream/bitemporal_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/bitemporal_test.cc.o.d"
  "/root/repo/tests/stream/canonical_property_test.cc" "tests/CMakeFiles/stream_test.dir/stream/canonical_property_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/canonical_property_test.cc.o.d"
  "/root/repo/tests/stream/canonical_test.cc" "tests/CMakeFiles/stream_test.dir/stream/canonical_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/canonical_test.cc.o.d"
  "/root/repo/tests/stream/coalesce_test.cc" "tests/CMakeFiles/stream_test.dir/stream/coalesce_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/coalesce_test.cc.o.d"
  "/root/repo/tests/stream/event_test.cc" "tests/CMakeFiles/stream_test.dir/stream/event_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/event_test.cc.o.d"
  "/root/repo/tests/stream/history_test.cc" "tests/CMakeFiles/stream_test.dir/stream/history_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/history_test.cc.o.d"
  "/root/repo/tests/stream/message_test.cc" "tests/CMakeFiles/stream_test.dir/stream/message_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/message_test.cc.o.d"
  "/root/repo/tests/stream/sync_test.cc" "tests/CMakeFiles/stream_test.dir/stream/sync_test.cc.o" "gcc" "tests/CMakeFiles/stream_test.dir/stream/sync_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cedr.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/cedr_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
