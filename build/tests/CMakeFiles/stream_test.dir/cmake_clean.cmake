file(REMOVE_RECURSE
  "CMakeFiles/stream_test.dir/stream/bitemporal_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/bitemporal_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/canonical_property_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/canonical_property_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/canonical_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/canonical_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/coalesce_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/coalesce_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/event_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/event_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/history_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/history_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/message_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/message_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/sync_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/sync_test.cc.o.d"
  "stream_test"
  "stream_test.pdb"
  "stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
