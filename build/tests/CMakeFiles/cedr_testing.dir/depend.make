# Empty dependencies file for cedr_testing.
# This may be replaced when dependencies are built.
