file(REMOVE_RECURSE
  "libcedr_testing.a"
)
