file(REMOVE_RECURSE
  "CMakeFiles/cedr_testing.dir/testing/helpers.cc.o"
  "CMakeFiles/cedr_testing.dir/testing/helpers.cc.o.d"
  "libcedr_testing.a"
  "libcedr_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedr_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
