file(REMOVE_RECURSE
  "CMakeFiles/fig07_operator_anatomy.dir/fig07_operator_anatomy.cc.o"
  "CMakeFiles/fig07_operator_anatomy.dir/fig07_operator_anatomy.cc.o.d"
  "fig07_operator_anatomy"
  "fig07_operator_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_operator_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
