# Empty compiler generated dependencies file for fig07_operator_anatomy.
# This may be replaced when dependencies are built.
