file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_frequency.dir/ablation_sync_frequency.cc.o"
  "CMakeFiles/ablation_sync_frequency.dir/ablation_sync_frequency.cc.o.d"
  "ablation_sync_frequency"
  "ablation_sync_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
