# Empty dependencies file for ablation_sync_frequency.
# This may be replaced when dependencies are built.
