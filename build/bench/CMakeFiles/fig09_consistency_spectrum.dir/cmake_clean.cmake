file(REMOVE_RECURSE
  "CMakeFiles/fig09_consistency_spectrum.dir/fig09_consistency_spectrum.cc.o"
  "CMakeFiles/fig09_consistency_spectrum.dir/fig09_consistency_spectrum.cc.o.d"
  "fig09_consistency_spectrum"
  "fig09_consistency_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_consistency_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
