# Empty dependencies file for fig09_consistency_spectrum.
# This may be replaced when dependencies are built.
