# Empty compiler generated dependencies file for fig03_05_canonicalization.
# This may be replaced when dependencies are built.
