file(REMOVE_RECURSE
  "CMakeFiles/fig03_05_canonicalization.dir/fig03_05_canonicalization.cc.o"
  "CMakeFiles/fig03_05_canonicalization.dir/fig03_05_canonicalization.cc.o.d"
  "fig03_05_canonicalization"
  "fig03_05_canonicalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_05_canonicalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
