file(REMOVE_RECURSE
  "CMakeFiles/fig10_unitemporal_ideal.dir/fig10_unitemporal_ideal.cc.o"
  "CMakeFiles/fig10_unitemporal_ideal.dir/fig10_unitemporal_ideal.cc.o.d"
  "fig10_unitemporal_ideal"
  "fig10_unitemporal_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_unitemporal_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
