# Empty compiler generated dependencies file for fig10_unitemporal_ideal.
# This may be replaced when dependencies are built.
