file(REMOVE_RECURSE
  "CMakeFiles/fig06_sync_points.dir/fig06_sync_points.cc.o"
  "CMakeFiles/fig06_sync_points.dir/fig06_sync_points.cc.o.d"
  "fig06_sync_points"
  "fig06_sync_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sync_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
