# Empty dependencies file for fig06_sync_points.
# This may be replaced when dependencies are built.
