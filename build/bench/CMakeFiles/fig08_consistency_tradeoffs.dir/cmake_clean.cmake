file(REMOVE_RECURSE
  "CMakeFiles/fig08_consistency_tradeoffs.dir/fig08_consistency_tradeoffs.cc.o"
  "CMakeFiles/fig08_consistency_tradeoffs.dir/fig08_consistency_tradeoffs.cc.o.d"
  "fig08_consistency_tradeoffs"
  "fig08_consistency_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_consistency_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
