file(REMOVE_RECURSE
  "CMakeFiles/sec05_level_switching.dir/sec05_level_switching.cc.o"
  "CMakeFiles/sec05_level_switching.dir/sec05_level_switching.cc.o.d"
  "sec05_level_switching"
  "sec05_level_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec05_level_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
