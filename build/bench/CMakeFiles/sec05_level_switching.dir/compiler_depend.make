# Empty compiler generated dependencies file for sec05_level_switching.
# This may be replaced when dependencies are built.
