# Empty dependencies file for sec31_language_example.
# This may be replaced when dependencies are built.
