file(REMOVE_RECURSE
  "CMakeFiles/sec31_language_example.dir/sec31_language_example.cc.o"
  "CMakeFiles/sec31_language_example.dir/sec31_language_example.cc.o.d"
  "sec31_language_example"
  "sec31_language_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec31_language_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
