# Empty compiler generated dependencies file for fig02_tritemporal_history.
# This may be replaced when dependencies are built.
