file(REMOVE_RECURSE
  "CMakeFiles/fig02_tritemporal_history.dir/fig02_tritemporal_history.cc.o"
  "CMakeFiles/fig02_tritemporal_history.dir/fig02_tritemporal_history.cc.o.d"
  "fig02_tritemporal_history"
  "fig02_tritemporal_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tritemporal_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
