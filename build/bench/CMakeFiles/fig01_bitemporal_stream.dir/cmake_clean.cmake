file(REMOVE_RECURSE
  "CMakeFiles/fig01_bitemporal_stream.dir/fig01_bitemporal_stream.cc.o"
  "CMakeFiles/fig01_bitemporal_stream.dir/fig01_bitemporal_stream.cc.o.d"
  "fig01_bitemporal_stream"
  "fig01_bitemporal_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bitemporal_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
