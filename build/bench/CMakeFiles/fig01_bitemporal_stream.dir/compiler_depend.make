# Empty compiler generated dependencies file for fig01_bitemporal_stream.
# This may be replaced when dependencies are built.
